"""Trace record / replay for the serve tier.

A *trace* is a JSONL file, one request event per line::

    {"v": 1, "t": 0.0123, "client": 0, "payload": {"op": "compile", ...}}

``t`` is seconds since the start of the trace, ``client`` groups the
events that travelled over one connection (ordering is only guaranteed
per connection — the protocol's arrival-order contract), and
``payload`` is the request object minus its ``id`` (replay assigns
sequential ids per client so two replays of one trace send
byte-identical request lines).

Three ways to get a trace:

* :class:`TraceWriter` — record a live stream; the load generator
  calls it for every synthetic request it sends, so any loadgen run
  can be captured (``repro bench-serve --record``).
* :func:`synthesize_trace` — generate one directly (Zipf-skewed pool
  picks, exponential inter-arrival gaps), deterministic under a seed.
* Write the JSONL by hand; :func:`load_trace` validates the shape.

Replay (:func:`replay_trace`) is the interesting half.  ``speed=1``
reproduces the recorded inter-arrival timing, ``speed=2`` halves every
gap, ``speed=0`` ignores timing entirely and pipelines flat out.
Because ids are deterministic, per-connection ordering is guaranteed,
and a warm daemon answers from the content-addressed cache (stored
reports carry their own ``compile_ms``), replaying a trace twice
against a warm fleet yields **byte-identical** response streams —
:class:`ReplayResult` keeps a sha256 over each client's raw response
bytes so the determinism suite can assert exactly that.
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TextIO

from .client import Address, ServeClient
from .metrics import percentile

TRACE_VERSION = 1


@dataclass(frozen=True)
class TraceEvent:
    """One recorded request."""

    t: float            # seconds since trace start
    client: int         # connection the request travelled on
    payload: dict       # the request object, sans ``id``

    def to_line(self) -> str:
        return json.dumps({"v": TRACE_VERSION, "t": round(self.t, 6),
                           "client": self.client,
                           "payload": self.payload},
                          separators=(",", ":"))


class TraceWriter:
    """Append-only JSONL recorder, safe to share across client threads."""

    def __init__(self, path: str):
        self.path = path
        self._file: Optional[TextIO] = open(path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self._start = time.monotonic()
        self.events = 0

    def record(self, client: int, payload: dict,
               t: Optional[float] = None) -> None:
        if t is None:
            t = time.monotonic() - self._start
        payload = {k: v for k, v in payload.items() if k != "id"}
        line = TraceEvent(t=t, client=client, payload=payload).to_line()
        with self._lock:
            if self._file is None:
                return
            self._file.write(line + "\n")
            self.events += 1

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def save_trace(path: str, events: Sequence[TraceEvent]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(event.to_line() + "\n")


def load_trace(path: str) -> List[TraceEvent]:
    """Read and validate a trace file; events come back sorted by
    ``(client, t)`` within each client's original order."""
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not JSON: {exc}") from exc
            if not isinstance(obj, dict) \
                    or not isinstance(obj.get("payload"), dict):
                raise ValueError(
                    f"{path}:{lineno}: each event needs a payload object")
            t = obj.get("t", 0.0)
            client = obj.get("client", 0)
            if not isinstance(t, (int, float)) or t < 0:
                raise ValueError(f"{path}:{lineno}: bad timestamp {t!r}")
            if not isinstance(client, int) or client < 0:
                raise ValueError(f"{path}:{lineno}: bad client {client!r}")
            events.append(TraceEvent(t=float(t), client=client,
                                     payload=obj["payload"]))
    if not events:
        raise ValueError(f"{path}: empty trace")
    return events


def synthesize_trace(pool, requests: int, clients: int = 4,
                     seed: int = 0, zipf_s: float = 1.1,
                     mean_gap: float = 0.001,
                     priority_mix: Optional[Dict[int, float]] = None,
                     tenants: bool = True) -> List[TraceEvent]:
    """A deterministic synthetic trace: *requests* events per client,
    Zipf-skewed over *pool*, exponential inter-arrival gaps with mean
    *mean_gap* seconds.  ``priority_mix`` maps priority -> probability
    (e.g. ``{0: 0.9, 5: 0.1}``); tenants default to the pool program's
    name, the same convention the live load generator uses."""
    from .loadgen import zipf_stream

    priorities = sorted((priority_mix or {0: 1.0}).items())
    levels = [p for p, _ in priorities]
    weights = [w for _, w in priorities]
    events: List[TraceEvent] = []
    for client in range(clients):
        rng = random.Random(seed * 7_919 + client)
        indices = zipf_stream(rng, len(pool), requests, s=zipf_s)
        t = 0.0
        for index in indices:
            t += rng.expovariate(1.0 / mean_gap) if mean_gap > 0 else 0.0
            program = pool[index]
            payload = program.payload()
            if tenants:
                payload["tenant"] = program.name
            priority = rng.choices(levels, weights=weights, k=1)[0]
            if priority:
                payload["priority"] = priority
            events.append(TraceEvent(t=t, client=client,
                                     payload=payload))
    return events


# ---------------------------------------------------------------- replay
@dataclass
class ReplayClientResult:
    """One replayed connection's tally."""

    client: int = 0
    sent: int = 0
    received: int = 0
    ok: int = 0
    cached: int = 0
    errors: Dict[str, int] = field(default_factory=dict)
    latencies: List[float] = field(default_factory=list)
    #: sha256 over the connection's concatenated raw response bytes —
    #: two replays of one trace against a warm fleet must match
    digest: str = ""
    #: (tenant, ok) per response, in arrival order — the per-tenant
    #: ordering witness for the determinism suite
    tenant_order: List[tuple] = field(default_factory=list)
    #: requests sent per tenant label (the offered load)
    tenant_sent: Dict[str, int] = field(default_factory=dict)
    failure: Optional[str] = None


@dataclass
class ReplayResult:
    """The merged outcome of one trace replay."""

    clients: List[ReplayClientResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    speed: float = 1.0

    @property
    def sent(self) -> int:
        return sum(c.sent for c in self.clients)

    @property
    def received(self) -> int:
        return sum(c.received for c in self.clients)

    @property
    def ok(self) -> int:
        return sum(c.ok for c in self.clients)

    @property
    def cached(self) -> int:
        return sum(c.cached for c in self.clients)

    @property
    def dropped(self) -> int:
        return self.sent - self.received

    @property
    def errors(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for c in self.clients:
            for code, n in c.errors.items():
                merged[code] = merged.get(code, 0) + n
        return merged

    @property
    def failures(self) -> List[str]:
        return [c.failure for c in self.clients if c.failure]

    @property
    def digests(self) -> Dict[int, str]:
        return {c.client: c.digest for c in self.clients}

    @property
    def tenant_orders(self) -> Dict[int, List[tuple]]:
        return {c.client: c.tenant_order for c in self.clients}

    def tenant_goodput(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for c in self.clients:
            for tenant, okay in c.tenant_order:
                if okay:
                    merged[tenant] = merged.get(tenant, 0) + 1
        return merged

    def tenant_offered(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for c in self.clients:
            for tenant, n in c.tenant_sent.items():
                merged[tenant] = merged.get(tenant, 0) + n
        return merged

    def goodput_spread(self) -> float:
        """max/min of per-tenant completion ratio; ~1.0 means every
        tenant's offered stream completed (see
        :meth:`repro.serve.loadgen.LoadResult.goodput_spread`)."""
        goodput = self.tenant_goodput()
        ratios = [goodput.get(tenant, 0) / offered
                  for tenant, offered in self.tenant_offered().items()
                  if offered > 0]
        if len(ratios) < 2 or min(ratios) == 0:
            return 0.0
        return max(ratios) / min(ratios)

    def to_dict(self) -> dict:
        lat = sorted(x for c in self.clients for x in c.latencies)
        return {
            "clients": len(self.clients),
            "speed": self.speed,
            "sent": self.sent,
            "received": self.received,
            "ok": self.ok,
            "cached": self.cached,
            "dropped": self.dropped,
            "errors": self.errors,
            "wall_seconds": round(self.wall_seconds, 3),
            "requests_per_second": round(
                self.received / self.wall_seconds, 2)
            if self.wall_seconds > 0 else 0.0,
            "latency_ms": {
                "p50": round(percentile(lat, 50) * 1000, 3),
                "p90": round(percentile(lat, 90) * 1000, 3),
                "p99": round(percentile(lat, 99) * 1000, 3),
                "p999": round(percentile(lat, 99.9) * 1000, 3),
            },
            "digests": self.digests,
        }


def _replay_client(address: Address, events: Sequence[TraceEvent],
                   speed: float, depth: int,
                   result: ReplayClientResult,
                   digest_payload: Callable[[dict], bytes]) -> None:
    client = ServeClient(address)
    hasher = hashlib.sha256()
    window: List[tuple] = []   # (send time, tenant)

    def drain(target: int) -> None:
        while len(window) > target:
            started, tenant = window.pop(0)
            line = client.recv_raw()
            result.received += 1
            result.latencies.append(time.monotonic() - started)
            hasher.update(digest_payload(json.loads(line)))
            response = json.loads(line)
            okay = bool(response.get("ok"))
            result.tenant_order.append((tenant, okay))
            if okay:
                result.ok += 1
                if response["result"].get("cached"):
                    result.cached += 1
            else:
                result.errors[response["error"]["code"]] = \
                    result.errors.get(response["error"]["code"], 0) + 1

    start = time.monotonic()
    try:
        for seq, event in enumerate(events, 1):
            if speed > 0:
                delay = start + event.t / speed - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
            client.send({"id": seq, **event.payload})
            tenant = event.payload.get("tenant", "")
            if tenant:
                result.tenant_sent[tenant] = \
                    result.tenant_sent.get(tenant, 0) + 1
            window.append((time.monotonic(), tenant))
            result.sent += 1
            if len(window) >= depth:
                drain(depth - 1)
        drain(0)
        result.digest = hasher.hexdigest()
    except Exception as exc:
        result.failure = f"{type(exc).__name__}: {exc}"
    finally:
        try:
            client.close()
        except Exception:
            pass


def replay_trace(address: Address, events: Sequence[TraceEvent],
                 speed: float = 1.0, depth: int = 64,
                 digest_fields: Optional[Sequence[str]] = None
                 ) -> ReplayResult:
    """Replay *events* against a daemon or fleet at *address*.

    ``speed`` scales the recorded inter-arrival gaps (0 = flat out);
    ``depth`` bounds per-connection pipelining.  By default the
    response digest covers the raw bytes; ``digest_fields`` narrows it
    to named response keys (e.g. drop ``compile_ms`` when comparing a
    cold run against a warm one).
    """
    if speed < 0:
        raise ValueError("speed must be >= 0")
    if depth < 1:
        raise ValueError("depth must be >= 1")
    by_client: Dict[int, List[TraceEvent]] = {}
    for event in events:
        by_client.setdefault(event.client, []).append(event)
    for stream in by_client.values():
        stream.sort(key=lambda e: e.t)

    if digest_fields is None:
        def digest_payload(response: dict) -> bytes:
            return json.dumps(response,
                              separators=(",", ":")).encode()
    else:
        keep = tuple(digest_fields)

        def digest_payload(response: dict) -> bytes:
            view = {
                "id": response.get("id"), "ok": response.get("ok"),
                "result": {k: v for k, v
                           in (response.get("result") or {}).items()
                           if k in keep},
                "error": response.get("error"),
            }
            return json.dumps(view, separators=(",", ":"),
                              sort_keys=True).encode()

    results = [ReplayClientResult(client=cid)
               for cid in sorted(by_client)]
    threads = []
    started = time.perf_counter()
    for result, cid in zip(results, sorted(by_client)):
        thread = threading.Thread(
            target=_replay_client,
            args=(address, by_client[cid], speed, depth, result,
                  digest_payload),
            name=f"replay-{cid}", daemon=True)
        threads.append(thread)
        thread.start()
    for thread in threads:
        thread.join()
    return ReplayResult(clients=results,
                        wall_seconds=time.perf_counter() - started,
                        speed=speed)
