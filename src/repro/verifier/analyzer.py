"""The eBPF verifier model: symbolic path exploration with pruning.

Follows the algorithm documented in Documentation/bpf/verifier.rst: walk
every path from the first instruction simulating the effect of each
instruction on an abstract state; at branch targets compare against
stored states and prune when an already-verified state subsumes the new
one.  Reports the paper's metrics: NPI (number of processed
instructions), peak/total states, and a modelled verification time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa import BpfProgram, Instruction
from ..isa import opcodes as op
from ..isa.helpers import BPF_PSEUDO_MAP_FD, HELPER_NAMES
from .kernels import DEFAULT_KERNEL, KernelConfig
from .state import POINTER_TYPES, RegState, RegType, SlotKind, StackSlot, VerifierState
from .tnum import Tnum

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1


class VerificationError(Exception):
    """Raised internally when a path violates a safety rule."""

    def __init__(self, pc: int, reason: str):
        super().__init__(f"at insn {pc}: {reason}")
        self.pc = pc
        self.reason = reason


@dataclass
class VerificationResult:
    ok: bool
    npi: int = 0
    peak_states: int = 0
    total_states: int = 0
    pruned: int = 0
    reason: str = ""
    verification_time_ns: float = 0.0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


# offsets of the packet pointers in our xdp_md layout
XDP_DATA_OFF = 0
XDP_DATA_END_OFF = 8


class Verifier:
    """Verifies one program against one kernel configuration."""

    def __init__(self, program: BpfProgram, config: KernelConfig = DEFAULT_KERNEL):
        self.program = program
        self.config = config
        self.slots = self._expand_slots(program.insns)
        self.map_specs = list(program.maps.values())
        self.npi = 0
        self.total_states = 0
        self.peak_states = 0
        self.pruned = 0
        self.visited: Dict[int, List[VerifierState]] = {}
        self.branch_targets = self._collect_branch_targets()
        self._next_ref = 0
        self.critical_live = self._solve_critical_liveness()

    #: helper id -> registers whose (size) bounds the helper checks
    _HELPER_SIZE_ARGS = {
        "probe_read": (op.R2,),
        "probe_read_str": (op.R2,),
        "get_current_comm": (op.R2,),
        "fib_lookup": (op.R3,),
        "perf_event_output": (op.R5,),
        "ringbuf_output": (op.R3,),
        "csum_diff": (op.R2, op.R4),
    }

    def _solve_critical_liveness(self) -> List[frozenset]:
        """Per-slot sets of registers whose scalar *bounds* may still
        feed a safety decision (variable pointer arithmetic or a helper
        size argument) before being overwritten.

        This approximates the kernel's precision tracking
        (``mark_chain_precision``): during state comparison only these
        registers are compared precisely; every other scalar matches any
        scalar, which is what keeps path exploration polynomial on
        programs with value-divergent accumulator registers.
        """
        from ..isa.helpers import HELPER_NAMES

        slots = self.slots
        n = len(slots)
        out_sets: List[frozenset] = [frozenset()] * n
        # successor map over slot indices
        succs: List[Tuple[int, ...]] = [()] * n
        for pc, insn in enumerate(slots):
            if insn is None:
                continue
            if insn.is_exit:
                succs[pc] = ()
            elif insn.is_jump and not insn.is_call:
                target = pc + insn.slots + insn.off
                if insn.jmp_op == op.BPF_JA:
                    succs[pc] = (target,)
                else:
                    succs[pc] = (target, pc + insn.slots)
            else:
                succs[pc] = (pc + insn.slots,)

        changed = True
        while changed:
            changed = False
            for pc in range(n - 1, -1, -1):
                insn = slots[pc]
                if insn is None:
                    continue
                out: Set[int] = set()
                for successor in succs[pc]:
                    if 0 <= successor < n:
                        source = slots[successor]
                        # IN[succ] = transfer(succ, OUT[succ])
                        out |= self._critical_in(
                            source, out_sets[successor], successor, n, succs
                        )
                new_out = frozenset(out)
                if new_out != out_sets[pc]:
                    out_sets[pc] = new_out
                    changed = True
        # convert OUT sets to IN sets per slot for the pruning check
        return [
            frozenset(self._critical_in(slots[pc], out_sets[pc], pc, n, succs))
            if slots[pc] is not None else frozenset()
            for pc in range(n)
        ]

    def _critical_in(self, insn, out: frozenset, pc: int, n: int,
                     succs) -> Set[int]:
        """Backward transfer function for one instruction."""
        from ..isa.helpers import HELPER_NAMES

        live: Set[int] = set(out)
        if insn is None:
            return live
        if insn.is_call:
            live -= set(op.CALLER_SAVED)
            name = HELPER_NAMES.get(insn.imm, "")
            live |= set(self._HELPER_SIZE_ARGS.get(name, ()))
            return live
        if insn.is_ld_imm64 or insn.is_load:
            live.discard(insn.dst)
            return live
        if insn.is_alu:
            aop = insn.alu_op
            uses_imm = insn.uses_imm
            was_live = insn.dst in live
            if aop == op.BPF_MOV:
                live.discard(insn.dst)
                if was_live and not uses_imm:
                    live.add(insn.src)
                return live
            # variable pointer arithmetic: both operands' bounds matter
            if (
                insn.insn_class == op.BPF_ALU64
                and aop in (op.BPF_ADD, op.BPF_SUB)
                and not uses_imm
            ):
                live.add(insn.dst)
                live.add(insn.src)
                return live
            if was_live and not uses_imm and aop not in (op.BPF_NEG,
                                                         op.BPF_END):
                live.add(insn.src)
            return live
        return live

    @staticmethod
    def _expand_slots(insns: List[Instruction]) -> List[Optional[Instruction]]:
        slots: List[Optional[Instruction]] = []
        for insn in insns:
            slots.append(insn)
            if insn.slots == 2:
                slots.append(None)
        return slots

    def _collect_branch_targets(self) -> set:
        targets = set()
        pc = 0
        self.backedge_targets = set()
        for insn in self.program.insns:
            if insn.is_jump and not insn.is_call and not insn.is_exit:
                target = pc + insn.slots + insn.off
                targets.add(target)
                if insn.off < 0:
                    self.backedge_targets.add(target)
            pc += insn.slots
        return targets

    # ------------------------------------------------------------------ api
    def verify(self) -> VerificationResult:
        if self.program.ni > self.config.max_insns:
            return VerificationResult(
                ok=False,
                reason=f"program too large: {self.program.ni} insns > "
                f"{self.config.max_insns}",
            )
        if not self.config.supports_v3 and self._uses_v3():
            return VerificationResult(
                ok=False,
                reason=f"kernel {self.config.version} rejects ALU32/JMP32 "
                "instructions",
            )
        worklist: List[Tuple[int, VerifierState]] = [(0, VerifierState())]
        self.total_states = 1
        try:
            while worklist:
                self.peak_states = max(
                    self.peak_states, len(worklist) + sum(
                        len(v) for v in self.visited.values()
                    )
                )
                pc, state = worklist.pop()
                self._walk_path(pc, state, worklist)
        except VerificationError as exc:
            return self._result(False, str(exc))
        return self._result(True, "")

    def _result(self, ok: bool, reason: str) -> VerificationResult:
        time_ns = (
            self.npi * self.config.ns_per_insn
            + self.total_states * self.config.ns_per_state
        )
        return VerificationResult(
            ok=ok,
            npi=self.npi,
            peak_states=self.peak_states,
            total_states=self.total_states,
            pruned=self.pruned,
            reason=reason,
            verification_time_ns=time_ns,
        )

    def _uses_v3(self) -> bool:
        return any(
            insn.insn_class in (op.BPF_ALU, op.BPF_JMP32)
            and insn.alu_op != op.BPF_END
            for insn in self.program.insns
        )

    # ----------------------------------------------------------------- walk
    def _walk_path(
        self, pc: int, state: VerifierState,
        worklist: List[Tuple[int, VerifierState]],
    ) -> None:
        since_stored = 0
        while True:
            if pc < 0 or pc >= len(self.slots):
                raise VerificationError(pc, "jump out of program bounds")
            insn = self.slots[pc]
            if insn is None:
                raise VerificationError(pc, "jump into the middle of ld_imm64")

            store_here = (
                pc in self.branch_targets and self.config.prune_at_branch_targets
            ) or since_stored >= self.config.state_store_interval
            if store_here:
                since_stored = 0
                stored = self.visited.setdefault(pc, [])
                # loop headers compare precisely (the kernel re-derives
                # precision along back-edges): an infinite loop then
                # keeps producing fresh states until the NPI limit trips
                # instead of being pruned "safe"
                critical = (
                    None if pc in self.backedge_targets
                    else self.critical_live[pc]
                )
                if any(old.subsumes(state, critical) for old in stored):
                    self.pruned += 1
                    return
                stored.append(state.copy())
                if len(stored) > 32:
                    # bound the comparison list like the kernel's
                    # sl->miss_cnt-based eviction: drop the oldest state
                    stored.pop(0)
                self.total_states += 1
                self.peak_states = max(
                    self.peak_states,
                    len(worklist) + sum(len(v) for v in self.visited.values()),
                )
            since_stored += 1

            self.npi += 1
            if self.npi > self.config.max_processed:
                raise VerificationError(
                    pc,
                    f"BPF program is too large: processed "
                    f"{self.npi} insns (limit {self.config.max_processed})",
                )

            cls = insn.insn_class
            if insn.is_exit:
                self._check_exit(pc, state)
                return
            if insn.is_call:
                self._do_call(pc, insn, state)
                pc += 1
                continue
            if cls in (op.BPF_JMP, op.BPF_JMP32):
                if insn.jmp_op == op.BPF_JA:
                    pc = pc + 1 + insn.off
                    continue
                outcome = self._branch(pc, insn, state)
                taken_state, fallthrough_state = outcome
                target = pc + 1 + insn.off
                if taken_state is not None and fallthrough_state is not None:
                    worklist.append((target, taken_state))
                    self.total_states += 1
                    state = fallthrough_state
                    pc += 1
                elif taken_state is not None:
                    state = taken_state
                    pc = target
                elif fallthrough_state is not None:
                    state = fallthrough_state
                    pc += 1
                else:  # pragma: no cover - defensive
                    return
                continue
            if insn.is_ld_imm64:
                self._do_ld_imm64(insn, state)
                pc += 2
                continue
            if insn.is_alu:
                self._do_alu(pc, insn, state)
                pc += 1
                continue
            if insn.is_memory:
                self._do_memory(pc, insn, state)
                pc += 1
                continue
            raise VerificationError(pc, f"unknown opcode {insn.opcode:#x}")

    # --------------------------------------------------------------- pieces
    def _check_exit(self, pc: int, state: VerifierState) -> None:
        r0 = state.regs[op.R0]
        if r0.type == RegType.NOT_INIT:
            raise VerificationError(pc, "R0 !read_ok: returning uninitialized")
        if r0.is_pointer and r0.type != RegType.PTR_TO_MAP_VALUE_OR_NULL:
            raise VerificationError(pc, "returning pointer value from program")

    def _reg(self, pc: int, state: VerifierState, reg: int,
             allow_uninit: bool = False) -> RegState:
        if reg > op.R10:
            raise VerificationError(pc, f"invalid register r{reg}")
        value = state.regs[reg]
        if value.type == RegType.NOT_INIT and not allow_uninit:
            raise VerificationError(pc, f"R{reg} !read_ok (uninitialized)")
        return value

    def _do_ld_imm64(self, insn: Instruction, state: VerifierState) -> None:
        if insn.src == BPF_PSEUDO_MAP_FD or (
            self.map_specs and 1 <= insn.imm <= len(self.map_specs)
        ):
            map_id = insn.imm
            if 1 <= map_id <= len(self.map_specs):
                spec = self.map_specs[map_id - 1]
                state.regs[insn.dst] = RegState.pointer(
                    RegType.CONST_MAP_PTR,
                    map_id=map_id,
                    value_size=spec.value_size,
                )
                return
        state.regs[insn.dst] = RegState.const(insn.imm & _U64)

    # --- ALU -------------------------------------------------------------------
    def _do_alu(self, pc: int, insn: Instruction, state: VerifierState) -> None:
        is32 = insn.is_alu32
        aop = insn.alu_op
        dst_reg = insn.dst
        if dst_reg == op.R10:
            raise VerificationError(pc, "frame pointer is read only")

        if aop == op.BPF_END:
            value = self._reg(pc, state, dst_reg)
            state.regs[dst_reg] = RegState.scalar()
            return

        if aop == op.BPF_MOV:
            if insn.uses_imm:
                imm = insn.imm & (_U32 if is32 else _U64)
                state.regs[dst_reg] = RegState.const(imm)
            else:
                src = self._reg(pc, state, insn.src)
                if is32:
                    state.regs[dst_reg] = self._cast32(src)
                else:
                    state.regs[dst_reg] = src
            return

        dst = self._reg(pc, state, dst_reg)
        if aop == op.BPF_NEG:
            if dst.is_pointer:
                raise VerificationError(pc, "pointer arithmetic: neg on pointer")
            state.regs[dst_reg] = self._clamp32(RegState.scalar(), is32)
            return

        if insn.uses_imm:
            src = RegState.const(insn.imm & (_U32 if is32 else _U64))
        else:
            src = self._reg(pc, state, insn.src)

        if dst.is_pointer or src.is_pointer:
            state.regs[dst_reg] = self._pointer_alu(pc, insn, dst, src, is32)
            return

        if is32 and not self.config.alu32_precise:
            # pre-5.13 kernels lose bounds through 32-bit ALU
            state.regs[dst_reg] = RegState.scalar(
                Tnum.range(0, _U32), umin=0, umax=_U32
            )
            return
        state.regs[dst_reg] = self._clamp32(self._scalar_alu(aop, dst, src), is32)

    @staticmethod
    def _cast32(src: RegState) -> RegState:
        if src.is_pointer:
            return RegState.scalar(Tnum.range(0, _U32), umin=0, umax=_U32)
        t = src.tnum.cast(4)
        return RegState.scalar(t, umin=t.umin, umax=min(t.umax, _U32))

    @staticmethod
    def _clamp32(reg: RegState, is32: bool) -> RegState:
        if not is32 or not reg.is_scalar:
            return reg
        t = reg.tnum.cast(4)
        return RegState.scalar(t, umin=t.umin, umax=min(t.umax, _U32))

    def _scalar_alu(self, aop: int, dst: RegState, src: RegState) -> RegState:
        t1, t2 = dst.tnum, src.tnum
        if aop == op.BPF_ADD:
            tnum = t1.add(t2)
            if dst.umax + src.umax <= _U64:
                return RegState.scalar(tnum, dst.umin + src.umin,
                                       dst.umax + src.umax)
            return RegState.scalar(tnum)
        if aop == op.BPF_SUB:
            tnum = t1.sub(t2)
            if dst.umin >= src.umax:
                return RegState.scalar(tnum, dst.umin - src.umax,
                                       dst.umax - src.umin)
            return RegState.scalar(tnum)
        if aop == op.BPF_MUL:
            tnum = t1.mul(t2)
            if dst.umax * src.umax <= _U64:
                return RegState.scalar(tnum, dst.umin * src.umin,
                                       dst.umax * src.umax)
            return RegState.scalar(tnum)
        if aop == op.BPF_AND:
            tnum = t1.and_(t2)
            return RegState.scalar(tnum, umax=min(dst.umax, src.umax, tnum.umax))
        if aop == op.BPF_OR:
            tnum = t1.or_(t2)
            return RegState.scalar(tnum, umin=max(dst.umin, src.umin, tnum.umin))
        if aop == op.BPF_XOR:
            return RegState.scalar(t1.xor(t2))
        if aop == op.BPF_LSH:
            if t2.is_const:
                shift = t2.value % 64
                tnum = t1.lshift(shift)
                if dst.umax << shift <= _U64:
                    return RegState.scalar(tnum, dst.umin << shift,
                                           dst.umax << shift)
                return RegState.scalar(tnum)
            return RegState.scalar()
        if aop == op.BPF_RSH:
            if t2.is_const:
                shift = t2.value % 64
                return RegState.scalar(
                    t1.rshift(shift), dst.umin >> shift, dst.umax >> shift
                )
            return RegState.scalar(umax=dst.umax)
        if aop == op.BPF_ARSH:
            if t2.is_const:
                return RegState.scalar(t1.arshift(t2.value % 64))
            return RegState.scalar()
        if aop == op.BPF_DIV:
            return RegState.scalar(umax=dst.umax)
        if aop == op.BPF_MOD:
            if t2.is_const and t2.value:
                return RegState.scalar(umax=t2.value - 1)
            return RegState.scalar(umax=max(dst.umax, src.umax))
        return RegState.scalar()

    def _pointer_alu(self, pc: int, insn: Instruction, dst: RegState,
                     src: RegState, is32: bool) -> RegState:
        aop = insn.alu_op
        if is32:
            raise VerificationError(pc, "32-bit pointer arithmetic prohibited")
        if dst.is_pointer and src.is_pointer:
            packet_family = {RegType.PTR_TO_PACKET, RegType.PTR_TO_PACKET_END}
            if aop == op.BPF_SUB and (
                dst.type == src.type
                or (dst.type in packet_family and src.type in packet_family)
            ):
                return RegState.scalar()  # pointer difference is a scalar
            raise VerificationError(
                pc, f"pointer arithmetic on two pointers ({dst.type.value}, "
                f"{src.type.value})"
            )
        if src.is_pointer:  # scalar (dst) + pointer: only ADD commutes
            if aop != op.BPF_ADD:
                raise VerificationError(pc, "pointer on rhs of non-add")
            dst, src = src, dst
        if aop not in (op.BPF_ADD, op.BPF_SUB):
            raise VerificationError(
                pc, f"invalid operation on pointer: "
                f"{op.ALU_OP_NAMES[aop]}"
            )
        if dst.type in (RegType.PTR_TO_PACKET_END, RegType.CONST_MAP_PTR):
            raise VerificationError(
                pc, f"arithmetic on {dst.type.value} pointer prohibited"
            )
        if src.is_const:
            delta = src.tnum.value
            if delta >> 63:
                delta -= 1 << 64
            if aop == op.BPF_SUB:
                delta = -delta
            return dst.with_(off=dst.off + delta)
        if aop == op.BPF_SUB:
            raise VerificationError(pc, "variable subtraction from pointer")
        if dst.type not in (RegType.PTR_TO_PACKET, RegType.PTR_TO_MAP_VALUE,
                            RegType.PTR_TO_STACK):
            raise VerificationError(
                pc, f"variable offset on {dst.type.value} pointer"
            )
        if src.umax > (1 << 29):
            raise VerificationError(pc, "unbounded variable offset on pointer")
        return dst.with_(
            umin=dst.umin + src.umin,
            umax=dst.umax + src.umax,
        )

    # --- memory -------------------------------------------------------------------
    def _do_memory(self, pc: int, insn: Instruction, state: VerifierState) -> None:
        if insn.is_atomic:
            base = self._reg(pc, state, insn.dst)
            value = self._reg(pc, state, insn.src)
            if value.is_pointer:
                raise VerificationError(pc, "atomic operand must be scalar")
            self._check_access(pc, state, base, insn.off, insn.size_bytes,
                               write=True)
            self._check_access(pc, state, base, insn.off, insn.size_bytes,
                               write=False)
            if insn.imm & op.BPF_FETCH:
                state.regs[insn.src] = RegState.scalar()
            return
        if insn.is_load:
            base = self._reg(pc, state, insn.src)
            result = self._load_result(pc, state, base, insn)
            state.regs[insn.dst] = result
            return
        # stores
        base = self._reg(pc, state, insn.dst)
        if insn.is_store_imm:
            value: Optional[RegState] = RegState.const(insn.imm & _U64)
        else:
            value = self._reg(pc, state, insn.src)
        if base.type == RegType.PTR_TO_CTX:
            raise VerificationError(pc, "write into ctx prohibited")
        if value is not None and value.is_pointer and base.type != RegType.PTR_TO_STACK:
            raise VerificationError(pc, "leaking pointer to unprivileged memory")
        self._check_access(pc, state, base, insn.off, insn.size_bytes, write=True,
                           stored=value)

    def _load_result(self, pc: int, state: VerifierState, base: RegState,
                     insn: Instruction) -> RegState:
        size = insn.size_bytes
        offset = insn.off
        if base.type == RegType.PTR_TO_CTX:
            self._check_ctx(pc, base, offset, size)
            total = base.off + offset
            if self.program.prog_type.value == "xdp" and size == 8:
                if total == XDP_DATA_OFF:
                    return RegState.pointer(RegType.PTR_TO_PACKET)
                if total == XDP_DATA_END_OFF:
                    return RegState.pointer(RegType.PTR_TO_PACKET_END)
            return RegState.scalar(
                Tnum.range(0, (1 << (size * 8)) - 1),
                umax=(1 << (size * 8)) - 1,
            )
        slot_value = self._check_access(pc, state, base, offset, size, write=False)
        if slot_value is not None:
            return slot_value
        return RegState.scalar(
            Tnum.range(0, (1 << (size * 8)) - 1), umax=(1 << (size * 8)) - 1
        )

    def _check_ctx(self, pc: int, base: RegState, offset: int, size: int) -> None:
        total = base.off + offset
        if total < 0 or total + size > self.program.ctx_size:
            raise VerificationError(
                pc, f"invalid ctx access: off={total} size={size} "
                f"(ctx is {self.program.ctx_size} bytes)"
            )

    def _check_access(
        self,
        pc: int,
        state: VerifierState,
        base: RegState,
        offset: int,
        size: int,
        write: bool,
        stored: Optional[RegState] = None,
    ) -> Optional[RegState]:
        """Bounds/init checks; returns a loaded RegState for stack reads
        of spilled registers."""
        if base.type == RegType.PTR_TO_CTX:
            self._check_ctx(pc, base, offset, size)
            if write:
                raise VerificationError(pc, "write into ctx prohibited")
            return None
        if base.type == RegType.PTR_TO_STACK:
            return self._check_stack(pc, state, base, offset, size, write, stored)
        if base.type == RegType.PTR_TO_PACKET:
            lo = base.off + base.umin + offset
            hi = base.off + base.umax + offset
            if lo < 0:
                raise VerificationError(pc, "packet access before data")
            if hi + size > base.pkt_range:
                raise VerificationError(
                    pc,
                    f"invalid access to packet: off={hi} size={size} "
                    f"range={base.pkt_range} (add a bounds check)",
                )
            return None
        if base.type == RegType.PTR_TO_MAP_VALUE:
            lo = base.off + base.umin + offset
            hi = base.off + base.umax + offset
            if lo < 0 or hi + size > base.value_size:
                raise VerificationError(
                    pc,
                    f"invalid map value access: off={hi} size={size} "
                    f"value_size={base.value_size}",
                )
            return None
        if base.type == RegType.PTR_TO_MAP_VALUE_OR_NULL:
            raise VerificationError(
                pc, "map value pointer used before NULL check"
            )
        if base.type == RegType.PTR_TO_PACKET_END:
            raise VerificationError(pc, "cannot dereference pkt_end pointer")
        raise VerificationError(
            pc, f"R dereference of non-pointer ({base.type.value})"
        )

    def _check_stack(
        self,
        pc: int,
        state: VerifierState,
        base: RegState,
        offset: int,
        size: int,
        write: bool,
        stored: Optional[RegState],
    ) -> Optional[RegState]:
        if base.umax != base.umin:
            raise VerificationError(pc, "variable stack access prohibited")
        total = base.off + offset + base.umin
        if not (-op.STACK_SIZE <= total and total + size <= 0):
            raise VerificationError(
                pc, f"invalid stack access: off={total} size={size}"
            )
        if total % size:
            raise VerificationError(
                pc, f"misaligned stack access: off={total} size={size}"
            )
        if write:
            if stored is not None and stored.is_pointer and size != 8:
                raise VerificationError(pc, "partial spill of a pointer")
            if stored is not None and size == 8:
                # full-width spill keeps the register state (incl. scalar
                # bounds), mirroring the kernel's spill tracking
                state.stack[total] = StackSlot(SlotKind.SPILLED_PTR, stored)
                for b in range(1, size):
                    state.stack.pop(total + b, None)
            else:
                kind = SlotKind.ZERO if (
                    stored is not None and stored.is_const
                    and stored.const_value == 0
                ) else SlotKind.MISC
                for b in range(size):
                    state.stack[total + b] = StackSlot(kind)
            return None
        # read: every byte must be initialized
        first = state.stack.get(total)
        if first is not None and first.kind == SlotKind.SPILLED_PTR and size == 8:
            return first.reg
        # bytes covered by a full-width spill count as initialized misc
        covered = set()
        for offset, slot in state.stack.items():
            if slot.kind == SlotKind.SPILLED_PTR:
                covered.update(range(offset, offset + 8))
        result_zero = True
        for b in range(size):
            byte = total + b
            slot = state.stack.get(byte)
            if slot is None or slot.kind == SlotKind.INVALID:
                if byte in covered:
                    result_zero = False
                    continue
                raise VerificationError(
                    pc, f"invalid read from stack off {byte}: uninitialized"
                )
            if slot.kind != SlotKind.ZERO:
                result_zero = False
        if result_zero:
            return RegState.const(0)
        return None

    # --- calls -----------------------------------------------------------------
    def _do_call(self, pc: int, insn: Instruction, state: VerifierState) -> None:
        name = HELPER_NAMES.get(insn.imm)
        if name is None:
            raise VerificationError(pc, f"invalid helper id {insn.imm}")
        result = self._check_helper(pc, name, state)
        for reg in op.CALLER_SAVED[1:]:
            state.regs[reg] = RegState.not_init()
        state.regs[op.R0] = result

    def _check_helper(self, pc: int, name: str, state: VerifierState) -> RegState:
        regs = state.regs
        if name == "map_lookup_elem":
            handle = self._expect_map(pc, regs[op.R1])
            self._expect_mem(pc, state, regs[op.R2], handle[1].key_size,
                             "R2 key")
            spec = handle[1]
            self._next_ref += 1
            return RegState.pointer(
                RegType.PTR_TO_MAP_VALUE_OR_NULL,
                map_id=handle[0],
                value_size=spec.value_size,
                ref_id=self._next_ref,
            )
        if name == "map_update_elem":
            handle = self._expect_map(pc, regs[op.R1])
            self._expect_mem(pc, state, regs[op.R2], handle[1].key_size,
                             "R2 key")
            self._expect_mem(pc, state, regs[op.R3], handle[1].value_size,
                             "R3 value")
            return RegState.scalar()
        if name == "map_delete_elem":
            handle = self._expect_map(pc, regs[op.R1])
            self._expect_mem(pc, state, regs[op.R2], handle[1].key_size,
                             "R2 key")
            return RegState.scalar()
        if name in ("probe_read", "probe_read_str", "get_current_comm"):
            dst = regs[op.R1]
            size = regs[op.R2]
            if dst.type == RegType.NOT_INIT:
                raise VerificationError(pc, "R1 !read_ok in helper call")
            self._mark_helper_write(state, dst, size)
            return RegState.scalar()
        if name == "fib_lookup":
            # (ctx, params, plen, flags): params is an in/out struct the
            # helper fills, so its stack bytes become initialized
            params = regs[op.R2]
            plen = regs[op.R3]
            if params.type == RegType.NOT_INIT:
                raise VerificationError(pc, "R2 !read_ok in fib_lookup")
            self._mark_helper_write(state, params, plen)
            return RegState.scalar()
        # generic helpers: require initialized argument registers that the
        # program actually set up; we accept anything initialized
        return RegState.scalar()

    @staticmethod
    def _mark_helper_write(state: VerifierState, dst: RegState,
                           size: RegState) -> None:
        """Mark a helper-written stack buffer as initialized."""
        if dst.type == RegType.PTR_TO_STACK and size.is_const:
            total = dst.off + dst.umin
            for b in range(size.const_value):
                state.stack[total + b] = StackSlot(SlotKind.MISC)

    def _expect_map(self, pc: int, reg: RegState):
        if reg.type != RegType.CONST_MAP_PTR:
            raise VerificationError(
                pc, f"expected map pointer, got {reg.type.value}"
            )
        spec = self.map_specs[reg.map_id - 1]
        return reg.map_id, spec

    def _expect_mem(self, pc: int, state: VerifierState, reg: RegState,
                    size: int, what: str) -> None:
        if reg.type == RegType.PTR_TO_STACK:
            self._check_stack(pc, state, reg, 0, size, write=False, stored=None)
            return
        if reg.type in (RegType.PTR_TO_MAP_VALUE, RegType.PTR_TO_PACKET):
            self._check_access(pc, state, reg, 0, size, write=False)
            return
        raise VerificationError(
            pc, f"{what}: expected readable memory of {size} bytes, got "
            f"{reg.type.value}"
        )

    # --- branches -----------------------------------------------------------------
    def _branch(
        self, pc: int, insn: Instruction, state: VerifierState
    ) -> Tuple[Optional[VerifierState], Optional[VerifierState]]:
        """Returns (taken_state, fallthrough_state); None = path impossible."""
        is32 = insn.insn_class == op.BPF_JMP32
        dst = self._reg(pc, state, insn.dst)
        if insn.uses_imm:
            src = RegState.const(insn.imm & (_U32 if is32 else _U64))
        else:
            src = self._reg(pc, state, insn.src)

        # packet bounds pattern: pkt vs pkt_end comparisons
        refined = self._packet_branch(insn, state, dst, src)
        if refined is not None:
            return refined

        # map-value NULL check
        null_check = self._null_check_branch(insn, state, dst, src)
        if null_check is not None:
            return null_check

        if dst.is_pointer or src.is_pointer:
            # pointer comparisons carry no refinement in our model
            return state.copy(), state

        decided = self._decide(insn, dst, src, is32)
        if decided is True:
            return state, None
        if decided is False:
            return None, state

        taken = state.copy()
        fall = state
        if insn.uses_imm and dst.is_scalar:
            jop = insn.jmp_op
            imm = insn.imm & (_U32 if is32 else _U64)
            taken.regs[insn.dst] = self._refine(dst, jop, imm, True, is32)
            fall.regs[insn.dst] = self._refine(dst, jop, imm, False, is32)
        return taken, fall

    def _packet_branch(self, insn, state, dst, src):
        pairs = {
            (RegType.PTR_TO_PACKET, RegType.PTR_TO_PACKET_END),
            (RegType.PTR_TO_PACKET_END, RegType.PTR_TO_PACKET),
        }
        if insn.uses_imm or (dst.type, src.type) not in pairs:
            return None
        jop = insn.jmp_op
        if dst.type == RegType.PTR_TO_PACKET:
            pkt_off = dst.off + dst.umax
            # "if pkt > pkt_end goto": fall-through proves pkt <= pkt_end
            if jop in (op.BPF_JGT, op.BPF_JGE):
                fall = state
                self._grow_pkt_range(fall, pkt_off)
                return state.copy(), fall
            if jop in (op.BPF_JLE, op.BPF_JLT):
                taken = state.copy()
                self._grow_pkt_range(taken, pkt_off)
                return taken, state
        else:
            pkt_off = src.off + src.umax
            # "if pkt_end >= pkt + N goto": taken proves range
            if jop in (op.BPF_JGE, op.BPF_JGT):
                taken = state.copy()
                self._grow_pkt_range(taken, pkt_off)
                return taken, state
            if jop in (op.BPF_JLT, op.BPF_JLE):
                fall = state
                self._grow_pkt_range(fall, pkt_off)
                return state.copy(), fall
        return state.copy(), state

    @staticmethod
    def _grow_pkt_range(state: VerifierState, new_range: int) -> None:
        for i, reg in enumerate(state.regs):
            if reg.type == RegType.PTR_TO_PACKET:
                state.regs[i] = reg.with_(pkt_range=max(reg.pkt_range, new_range))
        for offset, slot in state.stack.items():
            if slot.kind == SlotKind.SPILLED_PTR and slot.reg is not None and \
                    slot.reg.type == RegType.PTR_TO_PACKET:
                slot.reg = slot.reg.with_(
                    pkt_range=max(slot.reg.pkt_range, new_range)
                )

    def _null_check_branch(self, insn, state, dst, src):
        if dst.type != RegType.PTR_TO_MAP_VALUE_OR_NULL:
            return None
        if not (insn.uses_imm and insn.imm == 0):
            return None
        jop = insn.jmp_op
        if jop not in (op.BPF_JEQ, op.BPF_JNE):
            return None
        null_state = state.copy()
        self._mark_null_checked(null_state, dst.ref_id, is_null=True)
        ok_state = state
        self._mark_null_checked(ok_state, dst.ref_id, is_null=False)
        if jop == op.BPF_JEQ:
            return null_state, ok_state  # taken == NULL
        return ok_state, null_state

    @staticmethod
    def _mark_null_checked(state: VerifierState, ref_id: int,
                           is_null: bool) -> None:
        """Propagate a NULL-check verdict to every copy of the pointer."""
        for i, reg in enumerate(state.regs):
            if reg.type == RegType.PTR_TO_MAP_VALUE_OR_NULL and \
                    reg.ref_id == ref_id:
                if is_null:
                    state.regs[i] = RegState.const(0)
                else:
                    state.regs[i] = reg.with_(type=RegType.PTR_TO_MAP_VALUE)
        nulled_offsets = []
        for offset, slot in state.stack.items():
            if slot.kind == SlotKind.SPILLED_PTR and slot.reg is not None and \
                    slot.reg.type == RegType.PTR_TO_MAP_VALUE_OR_NULL and \
                    slot.reg.ref_id == ref_id:
                if is_null:
                    nulled_offsets.append(offset)
                else:
                    slot.reg = slot.reg.with_(type=RegType.PTR_TO_MAP_VALUE)
        for offset in nulled_offsets:
            for byte in range(8):
                state.stack[offset + byte] = StackSlot(SlotKind.ZERO)

    @staticmethod
    def _decide(insn: Instruction, dst: RegState, src: RegState,
                is32: bool) -> Optional[bool]:
        """Statically decide the branch when bounds allow it."""
        if not (dst.is_scalar and src.is_scalar):
            return None
        jop = insn.jmp_op
        if dst.is_const and src.is_const:
            a, b = dst.const_value, src.const_value
            if is32:
                a, b = a & _U32, b & _U32
            table = {
                op.BPF_JEQ: a == b,
                op.BPF_JNE: a != b,
                op.BPF_JGT: a > b,
                op.BPF_JGE: a >= b,
                op.BPF_JLT: a < b,
                op.BPF_JLE: a <= b,
                op.BPF_JSET: bool(a & b),
            }
            return table.get(jop)
        if is32:
            return None
        if jop == op.BPF_JGT:
            if dst.umin > src.umax:
                return True
            if dst.umax <= src.umin:
                return False
        elif jop == op.BPF_JGE:
            if dst.umin >= src.umax:
                return True
            if dst.umax < src.umin:
                return False
        elif jop == op.BPF_JLT:
            if dst.umax < src.umin:
                return True
            if dst.umin >= src.umax:
                return False
        elif jop == op.BPF_JLE:
            if dst.umax <= src.umin:
                return True
            if dst.umin > src.umax:
                return False
        elif jop == op.BPF_JEQ:
            if dst.umin > src.umax or dst.umax < src.umin:
                return False
        elif jop == op.BPF_JNE:
            if dst.umin > src.umax or dst.umax < src.umin:
                return True
        return None

    @staticmethod
    def _refine(reg: RegState, jop: int, imm: int, taken: bool,
                is32: bool) -> RegState:
        """Narrow scalar bounds along a branch edge (64-bit compares)."""
        if is32:
            return reg  # 32-bit compare refinement not modelled
        umin, umax = reg.umin, reg.umax
        tnum = reg.tnum
        if jop == op.BPF_JEQ and taken or jop == op.BPF_JNE and not taken:
            umin = umax = imm
            tnum = tnum.intersect(Tnum.const(imm))
        elif jop == op.BPF_JGT:
            if taken:
                umin = max(umin, imm + 1)
            else:
                umax = min(umax, imm)
        elif jop == op.BPF_JGE:
            if taken:
                umin = max(umin, imm)
            else:
                umax = min(umax, imm - 1) if imm else umax
        elif jop == op.BPF_JLT:
            if taken:
                umax = min(umax, imm - 1) if imm else umax
            else:
                umin = max(umin, imm)
        elif jop == op.BPF_JLE:
            if taken:
                umax = min(umax, imm)
            else:
                umin = max(umin, imm + 1)
        if umin > umax:
            # contradictory: keep old bounds (path will still be explored)
            return reg
        try:
            tnum = tnum.intersect(Tnum.range(umin, umax))
        except ValueError:
            return RegState.scalar(umin=umin, umax=umax)
        return RegState.scalar(tnum, umin=umin, umax=umax)


def verify(program: BpfProgram,
           config: KernelConfig = DEFAULT_KERNEL) -> VerificationResult:
    """Verify *program*; convenience wrapper."""
    return Verifier(program, config).verify()
