"""Per-kernel-version verifier configurations (4.15 through 6.5).

The fields encode the behavioural differences the paper leans on:
instruction/complexity limits (1M processed insns since 5.2), v3
instruction support, the quality of ALU32 bounds tracking (precise only
since 5.13), and the state-pruning cadence whose churn across versions
makes peak/total state counts unstable (paper Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class KernelConfig:
    version: str
    max_insns: int  # program size limit (NI)
    max_processed: int  # complexity limit (NPI)
    supports_v3: bool  # ALU32/JMP32 instructions accepted
    alu32_precise: bool  # bounds tracked through ALU32 ops
    state_store_interval: int  # store a pruning state every N insns
    prune_at_branch_targets: bool
    ns_per_insn: float  # verification-time model: cost per processed insn
    ns_per_state: float  # and per stored state

    @property
    def version_tuple(self) -> Tuple[int, int]:
        major, minor = self.version.split(".")[:2]
        return int(major), int(minor)


KERNELS: Dict[str, KernelConfig] = {
    "4.15": KernelConfig(
        version="4.15",
        max_insns=4096,
        max_processed=131072,
        supports_v3=False,
        alu32_precise=False,
        state_store_interval=8,
        prune_at_branch_targets=True,
        ns_per_insn=95.0,
        ns_per_state=1400.0,
    ),
    "5.2": KernelConfig(
        version="5.2",
        max_insns=1_000_000,
        max_processed=1_000_000,
        supports_v3=True,
        alu32_precise=False,
        state_store_interval=8,
        prune_at_branch_targets=True,
        ns_per_insn=105.0,
        ns_per_state=1200.0,
    ),
    "5.15": KernelConfig(
        version="5.15",
        max_insns=1_000_000,
        max_processed=1_000_000,
        supports_v3=True,
        alu32_precise=True,
        state_store_interval=16,
        prune_at_branch_targets=True,
        ns_per_insn=110.0,
        ns_per_state=1100.0,
    ),
    "5.19": KernelConfig(
        version="5.19",
        max_insns=1_000_000,
        max_processed=1_000_000,
        supports_v3=True,
        alu32_precise=True,
        state_store_interval=16,
        prune_at_branch_targets=True,
        ns_per_insn=112.0,
        ns_per_state=1050.0,
    ),
    "6.5": KernelConfig(
        version="6.5",
        max_insns=1_000_000,
        max_processed=1_000_000,
        supports_v3=True,
        alu32_precise=True,
        state_store_interval=32,
        prune_at_branch_targets=True,
        ns_per_insn=118.0,
        ns_per_state=950.0,
    ),
}

DEFAULT_KERNEL = KERNELS["6.5"]
