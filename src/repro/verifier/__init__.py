"""Model of the Linux kernel eBPF verifier."""

from .analyzer import (
    VerificationError,
    VerificationResult,
    Verifier,
    verify,
)
from .kernels import DEFAULT_KERNEL, KERNELS, KernelConfig
from .state import (
    POINTER_TYPES,
    RegState,
    RegType,
    SlotKind,
    StackSlot,
    VerifierState,
)
from .tnum import Tnum

__all__ = [
    "VerificationError",
    "VerificationResult",
    "Verifier",
    "verify",
    "DEFAULT_KERNEL",
    "KERNELS",
    "KernelConfig",
    "POINTER_TYPES",
    "RegState",
    "RegType",
    "SlotKind",
    "StackSlot",
    "VerifierState",
    "Tnum",
]
