"""Abstract register and stack state tracked by the verifier."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..isa import opcodes as op
from .tnum import Tnum

_U64 = (1 << 64) - 1


class RegType(enum.Enum):
    NOT_INIT = "not_init"
    SCALAR = "scalar"
    PTR_TO_CTX = "ctx"
    PTR_TO_STACK = "stack"
    PTR_TO_PACKET = "pkt"
    PTR_TO_PACKET_END = "pkt_end"
    PTR_TO_MAP_VALUE = "map_value"
    PTR_TO_MAP_VALUE_OR_NULL = "map_value_or_null"
    CONST_MAP_PTR = "map_ptr"


POINTER_TYPES = {
    RegType.PTR_TO_CTX,
    RegType.PTR_TO_STACK,
    RegType.PTR_TO_PACKET,
    RegType.PTR_TO_PACKET_END,
    RegType.PTR_TO_MAP_VALUE,
    RegType.PTR_TO_MAP_VALUE_OR_NULL,
    RegType.CONST_MAP_PTR,
}


@dataclass(frozen=True)
class RegState:
    """One register's abstract value.

    Scalars carry a tnum plus unsigned bounds; pointers carry a fixed
    byte offset (``off``), and packet pointers additionally the proven
    readable ``pkt_range``.
    """

    type: RegType = RegType.NOT_INIT
    tnum: Tnum = Tnum.unknown()
    umin: int = 0
    umax: int = _U64
    off: int = 0
    pkt_range: int = 0
    map_id: int = 0  # for map handles and map-value pointers
    value_size: int = 0  # map value size, for bounds checks
    ref_id: int = 0  # identity shared by copies of one map_lookup result

    # --- constructors ----------------------------------------------------
    @staticmethod
    def not_init() -> "RegState":
        return RegState()

    @staticmethod
    def scalar(tnum: Optional[Tnum] = None, umin: int = 0,
               umax: int = _U64) -> "RegState":
        t = tnum if tnum is not None else Tnum.unknown()
        return RegState(
            RegType.SCALAR,
            tnum=t,
            umin=max(umin, t.umin),
            umax=min(umax, t.umax),
        )

    @staticmethod
    def const(value: int) -> "RegState":
        value &= _U64
        return RegState(RegType.SCALAR, tnum=Tnum.const(value), umin=value,
                        umax=value)

    @staticmethod
    def pointer(ptype: RegType, off: int = 0, **kwargs) -> "RegState":
        return RegState(ptype, tnum=Tnum.const(0), umin=0, umax=0, off=off,
                        **kwargs)

    # --- queries --------------------------------------------------------------
    @property
    def is_pointer(self) -> bool:
        return self.type in POINTER_TYPES

    @property
    def is_scalar(self) -> bool:
        return self.type == RegType.SCALAR

    @property
    def is_const(self) -> bool:
        return self.is_scalar and self.tnum.is_const

    @property
    def const_value(self) -> int:
        if not self.is_const:
            raise ValueError("register value is not a known constant")
        return self.tnum.value

    def with_(self, **kwargs) -> "RegState":
        return replace(self, **kwargs)

    # --- lattice ---------------------------------------------------------------
    def subsumes(self, other: "RegState", precise: bool = True) -> bool:
        """True when every concrete state of *other* is covered by self
        (pruning is safe when the stored, already-verified state
        subsumes the new one).

        ``precise=False`` is the kernel's ``regsafe`` shortcut: a scalar
        whose exact bounds were never needed for a safety decision
        matches any other scalar, which is what keeps path exploration
        from exploding on value-carrying registers (accumulators,
        verdict flags) that differ across branches.
        """
        if self.type == RegType.NOT_INIT:
            return True  # anything is safe where nothing was relied upon
        if self.type != other.type:
            return False
        if self.is_scalar:
            if not precise:
                return True
            return (
                other.tnum.is_subset_of(self.tnum)
                and self.umin <= other.umin
                and self.umax >= other.umax
            )
        if self.off != other.off:
            return False
        if self.type == RegType.PTR_TO_PACKET:
            return self.pkt_range <= other.pkt_range
        if self.type == RegType.PTR_TO_MAP_VALUE_OR_NULL:
            return self.map_id == other.map_id and self.ref_id == other.ref_id
        if self.type in (RegType.PTR_TO_MAP_VALUE, RegType.CONST_MAP_PTR):
            return self.map_id == other.map_id
        return True


class SlotKind(enum.Enum):
    INVALID = 0
    MISC = 1  # initialized scalar bytes
    ZERO = 2
    SPILLED_PTR = 3


@dataclass
class StackSlot:
    kind: SlotKind = SlotKind.INVALID
    reg: Optional[RegState] = None  # for spilled registers (8-byte aligned)


class VerifierState:
    """Registers + stack for one exploration path."""

    __slots__ = ("regs", "stack")

    def __init__(self, regs: Optional[List[RegState]] = None,
                 stack: Optional[Dict[int, StackSlot]] = None):
        if regs is None:
            regs = [RegState.not_init() for _ in range(11)]
            regs[op.R1] = RegState.pointer(RegType.PTR_TO_CTX)
            regs[op.R10] = RegState.pointer(RegType.PTR_TO_STACK)
        self.regs = regs
        # stack keyed by byte offset (negative, relative to r10)
        self.stack: Dict[int, StackSlot] = stack if stack is not None else {}

    def copy(self) -> "VerifierState":
        return VerifierState(
            regs=list(self.regs),
            stack={k: StackSlot(v.kind, v.reg) for k, v in self.stack.items()},
        )

    def subsumes(self, other: "VerifierState",
                 critical_regs: Optional[frozenset] = None) -> bool:
        for index, (mine, theirs) in enumerate(zip(self.regs, other.regs)):
            precise = critical_regs is None or index in critical_regs
            if not mine.subsumes(theirs, precise=precise):
                return False
        for offset, slot in self.stack.items():
            other_slot = other.stack.get(offset)
            if slot.kind == SlotKind.INVALID:
                continue
            if other_slot is None:
                return False
            if slot.kind != other_slot.kind:
                return False
            if slot.kind == SlotKind.SPILLED_PTR:
                assert slot.reg is not None and other_slot.reg is not None
                # spilled scalars compare imprecisely, like registers do
                precise = slot.reg.is_pointer or other_slot.reg.is_pointer
                if not slot.reg.subsumes(other_slot.reg, precise=precise):
                    return False
        return True
