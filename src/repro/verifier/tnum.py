"""Tristate numbers (tnums) — the kernel verifier's bit-level abstraction.

A tnum ``(value, mask)`` represents the set of u64 numbers that agree
with ``value`` on every bit where ``mask`` is 0; bits set in ``mask``
are unknown.  Ported from the kernel's ``kernel/bpf/tnum.c``.
"""

from __future__ import annotations

from dataclasses import dataclass

_U64 = (1 << 64) - 1


@dataclass(frozen=True)
class Tnum:
    value: int
    mask: int

    def __post_init__(self) -> None:
        if self.value & self.mask:
            raise ValueError("tnum value and mask must not overlap")

    # --- constructors ------------------------------------------------------
    @staticmethod
    def const(value: int) -> "Tnum":
        return Tnum(value & _U64, 0)

    @staticmethod
    def unknown() -> "Tnum":
        return Tnum(0, _U64)

    @staticmethod
    def range(lo: int, hi: int) -> "Tnum":
        """Smallest tnum containing [lo, hi] (kernel's tnum_range)."""
        chi = (lo ^ hi) & _U64
        bits = chi.bit_length()
        if bits > 63:
            return Tnum.unknown()
        delta = (1 << bits) - 1
        return Tnum(lo & ~delta & _U64, delta)

    # --- queries -------------------------------------------------------------
    @property
    def is_const(self) -> bool:
        return self.mask == 0

    @property
    def umin(self) -> int:
        return self.value

    @property
    def umax(self) -> int:
        return (self.value | self.mask) & _U64

    def contains(self, x: int) -> bool:
        return (x & ~self.mask & _U64) == self.value

    def is_subset_of(self, other: "Tnum") -> bool:
        """Every concrete value of self is representable in other."""
        if self.mask & ~other.mask & _U64:
            return False
        return (self.value & ~other.mask & _U64) == other.value

    # --- arithmetic ------------------------------------------------------------
    def add(self, other: "Tnum") -> "Tnum":
        sm = (self.mask + other.mask) & _U64
        sv = (self.value + other.value) & _U64
        sigma = (sm + sv) & _U64
        chi = sigma ^ sv
        mu = (chi | self.mask | other.mask) & _U64
        return Tnum(sv & ~mu & _U64, mu)

    def sub(self, other: "Tnum") -> "Tnum":
        dv = (self.value - other.value) & _U64
        alpha = (dv + self.mask) & _U64
        beta = (dv - other.mask) & _U64
        chi = alpha ^ beta
        mu = (chi | self.mask | other.mask) & _U64
        return Tnum(dv & ~mu & _U64, mu)

    def and_(self, other: "Tnum") -> "Tnum":
        alpha = self.value | self.mask
        beta = other.value | other.mask
        v = self.value & other.value
        return Tnum(v, (alpha & beta & ~v) & _U64)

    def or_(self, other: "Tnum") -> "Tnum":
        v = self.value | other.value
        mu = self.mask | other.mask
        return Tnum(v & _U64, (mu & ~v) & _U64)

    def xor(self, other: "Tnum") -> "Tnum":
        v = self.value ^ other.value
        mu = self.mask | other.mask
        return Tnum((v & ~mu) & _U64, mu & _U64)

    def lshift(self, shift: int) -> "Tnum":
        shift %= 64
        return Tnum((self.value << shift) & _U64, (self.mask << shift) & _U64)

    def rshift(self, shift: int) -> "Tnum":
        shift %= 64
        return Tnum(self.value >> shift, self.mask >> shift)

    def arshift(self, shift: int, insn_bits: int = 64) -> "Tnum":
        shift %= insn_bits

        def sar(x: int) -> int:
            signed = x - (1 << insn_bits) if x >> (insn_bits - 1) else x
            return (signed >> shift) & ((1 << insn_bits) - 1)

        # conservatively: if the sign bit is unknown, the result's high
        # bits are unknown
        sign_unknown = bool(self.mask >> (insn_bits - 1) & 1)
        value = sar(self.value & ((1 << insn_bits) - 1))
        mask = sar(self.mask & ((1 << insn_bits) - 1))
        if sign_unknown:
            high = ((1 << insn_bits) - 1) ^ ((1 << max(insn_bits - shift, 0)) - 1)
            mask |= high
            value &= ~mask & _U64
        return Tnum(value & ~mask & _U64, mask & _U64)

    def mul(self, other: "Tnum") -> "Tnum":
        """Kernel-style conservative multiply."""
        if self.is_const and other.is_const:
            return Tnum.const(self.value * other.value)
        acc_v = (self.value * other.value) & _U64
        acc_m = Tnum(0, 0)
        a, b = self, other
        while a.value or a.mask:
            if a.value & 1:
                acc_m = acc_m.add(Tnum(0, b.mask))
            elif a.mask & 1:
                acc_m = acc_m.add(Tnum(0, (b.value | b.mask) & _U64))
            a = a.rshift(1)
            b = b.lshift(1)
        return Tnum.const(acc_v).add(acc_m)

    def intersect(self, other: "Tnum") -> "Tnum":
        v = self.value | other.value
        mu = self.mask & other.mask
        return Tnum(v & ~mu & _U64, mu)

    def union(self, other: "Tnum") -> "Tnum":
        """Smallest tnum containing both (kernel's tnum_union/hma join)."""
        mu = (self.mask | other.mask | (self.value ^ other.value)) & _U64
        return Tnum(self.value & ~mu & _U64, mu)

    def cast(self, size_bytes: int) -> "Tnum":
        """Truncate to *size_bytes* (zero upper bits)."""
        if size_bytes >= 8:
            return self
        keep = (1 << (size_bytes * 8)) - 1
        return Tnum(self.value & keep, self.mask & keep)

    def __repr__(self) -> str:
        if self.is_const:
            return f"Tnum({self.value:#x})"
        return f"Tnum(value={self.value:#x}, mask={self.mask:#x})"
