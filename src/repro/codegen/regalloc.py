"""Linear-scan register allocation onto the ten eBPF registers.

r0-r7 are allocatable (r6/r7 only for intervals that live across helper
calls, since calls clobber r0-r5); r8/r9 are reserved as spill scratch;
r10 is the read-only frame pointer.  Spilled virtual registers live in
8-byte stack slots below the allocas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa import Instruction
from ..isa import instruction as ins
from ..isa import opcodes as op
from .lowfunc import Label, LowFunction, LowInsn, is_vreg

ALLOCATABLE = (op.R0, op.R1, op.R2, op.R3, op.R4, op.R5, op.R6, op.R7)
CALL_SAFE = (op.R6, op.R7)
SCRATCH_DEF = op.R8
SCRATCH_USE = op.R9


class AllocationError(Exception):
    """Raised when allocation cannot make progress (should not happen)."""


@dataclass
class Interval:
    reg: int  # virtual register id
    start: int
    end: int
    phys: Optional[int] = None
    slot: Optional[int] = None  # stack offset when spilled

    @property
    def spilled(self) -> bool:
        return self.slot is not None


@dataclass
class _Block:
    first: int
    last: int
    succs: List[int] = field(default_factory=list)
    use: Set[int] = field(default_factory=set)
    defs: Set[int] = field(default_factory=set)
    live_in: Set[int] = field(default_factory=set)
    live_out: Set[int] = field(default_factory=set)


class LinearScanAllocator:
    """Allocates a :class:`LowFunction` in place."""

    def __init__(self, low: LowFunction):
        self.low = low
        self.insns: List[LowInsn] = list(low.insns())
        self.label_pos: Dict[str, int] = self._label_positions()
        self.intervals: Dict[int, Interval] = {}
        self.call_regions: List[Tuple[int, int]] = []
        self.phys_ranges: Dict[int, List[Tuple[int, int]]] = {}

    # ------------------------------------------------------------- plumbing
    def _label_positions(self) -> Dict[str, int]:
        positions: Dict[str, int] = {}
        pos = 0
        for item in self.low.items:
            if isinstance(item, Label):
                positions[item.name] = pos
            else:
                pos += 1
        return positions

    def run(self) -> LowFunction:
        blocks = self._build_blocks()
        self._solve_liveness(blocks)
        self._build_intervals(blocks)
        self._collect_call_regions()
        self._collect_phys_ranges()
        self._allocate()
        self._rewrite()
        return self.low

    # ----------------------------------------------------------------- CFG
    def _build_blocks(self) -> List[_Block]:
        n = len(self.insns)
        leaders = {0} | set(self.label_pos.values())
        for i, low in enumerate(self.insns):
            insn = low.insn
            if insn.is_jump or insn.is_exit:
                leaders.add(i + 1)
        leaders = sorted(p for p in leaders if p < n)
        blocks: List[_Block] = []
        starts = leaders + [n]
        index_of_start = {s: bi for bi, s in enumerate(leaders)}
        for bi, start in enumerate(leaders):
            block = _Block(first=start, last=starts[bi + 1] - 1)
            last = self.insns[block.last].insn
            target = self.insns[block.last].target
            if last.is_exit:
                pass
            elif last.is_jump and not last.is_call:
                if target is not None:
                    block.succs.append(index_of_start[self.label_pos[target]])
                if last.jmp_op != op.BPF_JA and block.last + 1 < n:
                    block.succs.append(index_of_start[block.last + 1])
            elif block.last + 1 < n:
                block.succs.append(index_of_start[block.last + 1])
            blocks.append(block)
        for block in blocks:
            for i in range(block.first, block.last + 1):
                low = self.insns[i]
                for reg in low.uses():
                    if is_vreg(reg) and reg not in block.defs:
                        block.use.add(reg)
                for reg in low.defs():
                    if is_vreg(reg):
                        block.defs.add(reg)
        return blocks

    def _solve_liveness(self, blocks: List[_Block]) -> None:
        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):
                out: Set[int] = set()
                for si in block.succs:
                    out |= blocks[si].live_in
                new_in = block.use | (out - block.defs)
                if out != block.live_out or new_in != block.live_in:
                    block.live_out = out
                    block.live_in = new_in
                    changed = True

    def _build_intervals(self, blocks: List[_Block]) -> None:
        def touch(reg: int, pos: int) -> None:
            interval = self.intervals.get(reg)
            if interval is None:
                self.intervals[reg] = Interval(reg, pos, pos)
            else:
                interval.start = min(interval.start, pos)
                interval.end = max(interval.end, pos)

        for block in blocks:
            for reg in block.live_in:
                touch(reg, block.first)
            for reg in block.live_out:
                touch(reg, block.last)
            for pos in range(block.first, block.last + 1):
                low = self.insns[pos]
                for reg in low.uses():
                    if is_vreg(reg):
                        touch(reg, pos)
                for reg in low.defs():
                    if is_vreg(reg):
                        touch(reg, pos)

    def _collect_call_regions(self) -> None:
        groups: Dict[int, Tuple[int, int]] = {}
        for pos, low in enumerate(self.insns):
            if low.group is not None:
                first, last = groups.get(low.group, (pos, pos))
                groups[low.group] = (min(first, pos), max(last, pos))
            elif low.insn.is_call:
                groups.setdefault(-pos - 1, (pos, pos))
        self.call_regions = sorted(groups.values())

    def _collect_phys_ranges(self) -> None:
        """Live ranges of *physical* registers (ABI args, call results)."""
        last_def: Dict[int, int] = {reg: -1 for reg in op.ARG_REGS}
        ranges: Dict[int, List[Tuple[int, int]]] = {}
        group_args: Dict[int, Set[int]] = {}
        for low in self.insns:
            if low.group is not None and low.insn.is_alu and not is_vreg(low.insn.dst):
                group_args.setdefault(low.group, set()).add(low.insn.dst)
        for pos, low in enumerate(self.insns):
            insn = low.insn
            if insn.is_call:
                used = group_args.get(low.group or 0, set())
            else:
                used = {r for r in low.uses() if not is_vreg(r)}
            for reg in used:
                if reg == op.FP or reg not in last_def:
                    continue
                ranges.setdefault(reg, []).append((last_def[reg], pos))
            defs = {r for r in low.defs() if not is_vreg(r)}
            if insn.is_call:
                defs |= set(op.CALLER_SAVED)
            for reg in defs:
                last_def[reg] = pos
        # merge ranges sharing a def point
        merged: Dict[int, List[Tuple[int, int]]] = {}
        for reg, pairs in ranges.items():
            by_def: Dict[int, int] = {}
            for start, end in pairs:
                by_def[start] = max(by_def.get(start, start), end)
            merged[reg] = sorted(by_def.items())
        self.phys_ranges = merged

    # ------------------------------------------------------------ allocation
    def _crosses_call(self, interval: Interval) -> bool:
        return any(
            interval.start < call_pos and interval.end > region_start
            for region_start, call_pos in self.call_regions
        )

    def _conflicts_phys(self, interval: Interval, phys: int) -> bool:
        for start, end in self.phys_ranges.get(phys, ()):
            if start < interval.end and end > interval.start:
                return True
        return False

    def _allocate(self) -> None:
        order = sorted(self.intervals.values(), key=lambda iv: (iv.start, iv.end))
        active: List[Interval] = []
        for interval in order:
            active = [a for a in active if a.end > interval.start]
            in_use = {a.phys for a in active if a.phys is not None}
            pool = CALL_SAFE if self._crosses_call(interval) else ALLOCATABLE
            choice = next(
                (
                    reg
                    for reg in pool
                    if reg not in in_use
                    and not self._conflicts_phys(interval, reg)
                ),
                None,
            )
            if choice is not None:
                interval.phys = choice
                active.append(interval)
                continue
            # no register free: spill the conflicting interval ending last
            candidates = [a for a in active if a.phys in pool] + [interval]
            victim = max(candidates, key=lambda iv: iv.end)
            if victim is interval:
                interval.slot = self.low.alloc_stack(8, 8)
            else:
                interval.phys, victim.phys = victim.phys, None
                victim.slot = self.low.alloc_stack(8, 8)
                active.remove(victim)
                active.append(interval)

    # ------------------------------------------------------------- rewriting
    def _map_reg(self, reg: int) -> Interval:
        return self.intervals[reg]

    def _rewrite(self) -> None:
        new_items: List[object] = []
        for item in self.low.items:
            if isinstance(item, Label):
                new_items.append(item)
                continue
            new_items.extend(self._rewrite_insn(item))
        self.low.items = new_items

    def _rewrite_insn(self, low: LowInsn) -> List[object]:
        insn = low.insn
        pre: List[LowInsn] = []
        post: List[LowInsn] = []
        fields: Dict[str, int] = {}
        same = insn.dst == insn.src and is_vreg(insn.dst) and not insn.is_ld_imm64

        roles = [("dst", insn.dst)]
        if not same and not insn.is_ld_imm64:
            roles.append(("src", insn.src))

        for role, reg in roles:
            if not is_vreg(reg):
                continue
            interval = self._map_reg(reg)
            if interval.phys is not None:
                fields[role] = interval.phys
                if same and role == "dst":
                    fields["src"] = interval.phys
                continue
            scratch = SCRATCH_DEF if role == "dst" else SCRATCH_USE
            if reg in insn.uses():
                pre.append(LowInsn(ins.load(8, scratch, op.FP, interval.slot)))
            if reg in insn.defs():
                post.append(LowInsn(ins.store_reg(8, op.FP, interval.slot, scratch)))
            fields[role] = scratch
            if same and role == "dst":
                fields["src"] = scratch
        if fields:
            low.insn = insn.with_(**fields)
        return pre + [low] + post


def allocate(low: LowFunction) -> LowFunction:
    """Run linear-scan allocation on *low* in place and return it."""
    return LinearScanAllocator(low).run()
