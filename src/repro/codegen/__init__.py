"""IR -> eBPF backend (the reproduction's ``llc``)."""

from typing import Optional

from .. import ir
from ..isa import BpfProgram, ProgramType
from .emitter import EmissionError, emit
from .isel import InstructionSelector, SelectionError, select
from .lowfunc import Label, LowFunction, LowInsn, StackOverflowError, VREG_BASE, is_vreg
from .regalloc import AllocationError, LinearScanAllocator, allocate


def compile_function(
    func: ir.Function,
    module: Optional[ir.Module] = None,
    prog_type: ProgramType = ProgramType.XDP,
    mcpu: str = "v2",
    ctx_size: int = 64,
    cleanup: bool = True,
) -> BpfProgram:
    """Compile one IR function to a loadable eBPF program.

    This is the "native pipeline" (clang -O2 + llc) path; run the result
    through :class:`repro.core.MerlinPipeline` for the paper's
    optimizations.  ``cleanup`` applies the copy-coalescing-equivalent
    sweep (self-moves, dead defs, jumps-to-next) a production register
    allocator performs — without it the baseline would be unfairly
    naive and Merlin's wins overstated.
    """
    low = select(func, module)
    allocate(low)
    maps = dict(module.maps) if module is not None else {}
    program = emit(low, prog_type=prog_type, maps=maps, mcpu=mcpu,
                   ctx_size=ctx_size)
    if cleanup:
        _native_cleanup(program)
    return program


def _native_cleanup(program: BpfProgram) -> None:
    """Allocator-grade cleanup: drop dead defs, self-moves, and
    unconditional jumps to the next instruction."""
    from ..core.bytecode_passes.analysis import BytecodeAnalysis
    from ..core.bytecode_passes.symbolic import SymbolicProgram
    from ..isa import opcodes as op

    sym = SymbolicProgram.from_program(program)
    changed = True
    while changed:
        changed = False
        analysis = BytecodeAnalysis(sym)
        for index in analysis.dead_defs():
            sym.delete(index)
            changed = True
        for index in sym.live_indices():
            item = sym.insns[index]
            insn = item.insn
            if insn.is_jump and insn.jmp_op == op.BPF_JA and \
                    not insn.is_exit and item.target is not None:
                resolved = item.target
                while resolved < len(sym.insns) and sym.insns[resolved].deleted:
                    resolved += 1
                if resolved == sym.next_live(index):
                    sym.delete(index)
                    changed = True
    program.insns = sym.to_insns()


__all__ = [
    "compile_function",
    "EmissionError",
    "emit",
    "InstructionSelector",
    "SelectionError",
    "select",
    "Label",
    "LowFunction",
    "LowInsn",
    "StackOverflowError",
    "VREG_BASE",
    "is_vreg",
    "AllocationError",
    "LinearScanAllocator",
    "allocate",
]
