"""Low-level function representation used between isel and emission.

Instructions here reuse :class:`repro.isa.Instruction` but may name
*virtual* registers (numbers >= :data:`VREG_BASE`).  Jumps refer to
string labels resolved by the emitter after register allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..isa import Instruction
from ..isa import opcodes as op

VREG_BASE = 16


def is_vreg(reg: int) -> bool:
    return reg >= VREG_BASE


@dataclass
class LowInsn:
    """One instruction plus an optional symbolic jump target.

    ``group`` ties together a helper call and its argument-setup moves
    so the register allocator can treat the whole region as clobbering
    the caller-saved registers r0-r5.
    """

    insn: Instruction
    target: Optional[str] = None
    group: Optional[int] = None

    def defs(self) -> Tuple[int, ...]:
        return self.insn.defs()

    def uses(self) -> Tuple[int, ...]:
        return self.insn.uses()


@dataclass
class Label:
    name: str


Item = Union[Label, LowInsn]


@dataclass
class LowFunction:
    """Linearized, virtually-register-allocated function body."""

    name: str
    items: List[Item] = field(default_factory=list)
    stack_used: int = 0  # bytes of stack reserved for allocas
    next_vreg: int = VREG_BASE

    def new_vreg(self) -> int:
        reg = self.next_vreg
        self.next_vreg += 1
        return reg

    def emit(self, insn: Instruction, target: Optional[str] = None) -> LowInsn:
        low = LowInsn(insn, target)
        self.items.append(low)
        return low

    def label(self, name: str) -> None:
        self.items.append(Label(name))

    def insns(self) -> Iterator[LowInsn]:
        for item in self.items:
            if isinstance(item, LowInsn):
                yield item

    def vregs(self) -> List[int]:
        seen = []
        seen_set = set()
        for low in self.insns():
            for reg in (low.insn.dst, low.insn.src):
                if is_vreg(reg) and reg not in seen_set:
                    seen_set.add(reg)
                    seen.append(reg)
        return seen

    def alloc_stack(self, size: int, align: int) -> int:
        """Reserve *size* bytes below r10; return the negative offset."""
        self.stack_used = (self.stack_used + size + align - 1) // align * align
        if self.stack_used > op.STACK_SIZE:
            raise StackOverflowError(
                f"{self.name}: stack use {self.stack_used} exceeds "
                f"{op.STACK_SIZE} bytes"
            )
        return -self.stack_used


class StackOverflowError(Exception):
    """Raised when a function needs more than the 512-byte eBPF stack."""
