"""Instruction selection: SSA IR -> low-level eBPF with virtual registers.

The selector deliberately reproduces the *naive* patterns LLVM's eBPF
backend emits at -O2 without Merlin, because those patterns are the raw
material of the paper's optimizations:

* a load/store whose asserted ``align`` is below the access width is
  decomposed into unit-width accesses assembled with shifts and ORs
  (Fig. 6 of the paper) — Merlin's DAO pass removes the need;
* zero-extension of a 32-bit value held in a 64-bit register uses the
  ``shl 32; shr 32`` pair (Fig. 8) — Merlin's code compaction turns it
  into one ALU32 ``mov``;
* ``lshr i32 x, k`` on a dirty register loads a 64-bit mask immediate,
  ANDs, then shifts (Fig. 9) — Merlin's peephole pass rewrites it;
* immediate stores always materialize the constant into a register
  first (Fig. 4) — Merlin's bytecode CP/DCE folds it back;
* read-modify-write stays load/op/store unless the IR already carries
  an ``atomicrmw`` (inserted by Merlin's macro-op fusion pass).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import ir
from ..ir import instructions as iri
from ..isa import Instruction, helpers
from ..isa import instruction as ins
from ..isa import opcodes as op
from .lowfunc import LowFunction, LowInsn

_S32_MIN, _S32_MAX = -(1 << 31), (1 << 31) - 1

#: IR binary op -> eBPF ALU op name (register/immediate form chosen later)
_ALU_NAME = {
    "add": "add",
    "sub": "sub",
    "mul": "mul",
    "udiv": "div",
    "urem": "mod",
    "and": "and",
    "or": "or",
    "xor": "xor",
    "shl": "lsh",
    "lshr": "rsh",
    "ashr": "arsh",
}

_ICMP_JUMP = {
    "eq": "jeq",
    "ne": "jne",
    "ugt": "jgt",
    "uge": "jge",
    "ult": "jlt",
    "ule": "jle",
    "sgt": "jsgt",
    "sge": "jsge",
    "slt": "jslt",
    "sle": "jsle",
}

_COMMUTATIVE = {"add", "mul", "and", "or", "xor"}


class SelectionError(Exception):
    """Raised when the IR uses a feature the backend does not support."""


def _imm_for(constant: ir.Constant) -> int:
    """The 64-bit pattern an instruction immediate must reproduce.

    Narrow values stay zero-extended in registers, so their immediates
    are the unsigned value; only true 64-bit constants use the signed
    (sign-extending) encoding.
    """
    if constant.type.bits == 64:
        return constant.signed
    return constant.value


class InstructionSelector:
    """Lowers one IR function into a :class:`LowFunction`."""

    def __init__(self, func: ir.Function, module: Optional[ir.Module] = None):
        self.func = func
        self.module = module
        self.low = LowFunction(func.name)
        self.value_reg: Dict[ir.Value, int] = {}
        self.alloca_off: Dict[iri.Alloca, int] = {}
        self.block_label: Dict[ir.BasicBlock, str] = {
            block: f".{func.name}.{block.name}" for block in func.blocks
        }
        self.map_ids: Dict[str, int] = {}
        if module is not None:
            self.map_ids = {name: i + 1 for i, name in enumerate(module.maps)}
        self._dirty_cache: Dict[ir.Value, bool] = {}
        self._label_counter = 0
        self._call_group = 0

    # ------------------------------------------------------------------ api
    def run(self) -> LowFunction:
        self._lower_arguments()
        order = self._rpo_order()
        for index, block in enumerate(order):
            self.low.label(self.block_label[block])
            next_block = order[index + 1] if index + 1 < len(order) else None
            self._lower_block(block, next_block)
        return self.low

    def _rpo_order(self) -> List[ir.BasicBlock]:
        """Reverse post-order over the CFG.

        A block's dominators always precede it in RPO, so every SSA
        value is lowered (and assigned a vreg) before any use — the
        function's textual block order carries no such guarantee once
        inlined continuations are involved.
        """
        visited: set = set()
        postorder: List[ir.BasicBlock] = []

        def visit(block: ir.BasicBlock) -> None:
            stack = [(block, iter(block.successors()))]
            visited.add(block)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if succ not in visited:
                        visited.add(succ)
                        stack.append((succ, iter(succ.successors())))
                        advanced = True
                        break
                if not advanced:
                    postorder.append(current)
                    stack.pop()

        visit(self.func.entry)
        order = list(reversed(postorder))
        # keep any unreachable blocks at the end (they still emit code)
        order.extend(b for b in self.func.blocks if b not in visited)
        return order

    # --------------------------------------------------------------- helpers
    def _fresh_label(self, hint: str) -> str:
        self._label_counter += 1
        return f".{self.func.name}.{hint}{self._label_counter}"

    def _emit(self, insn: Instruction, target: Optional[str] = None,
              group: Optional[int] = None) -> LowInsn:
        low = self.low.emit(insn, target)
        low.group = group
        return low

    def _vreg_for(self, value: ir.Value) -> int:
        if value not in self.value_reg:
            self.value_reg[value] = self.low.new_vreg()
        return self.value_reg[value]

    def _lower_arguments(self) -> None:
        # eBPF calling convention: arguments arrive in r1..r5
        for arg in self.func.args:
            if arg.index >= len(op.ARG_REGS):
                raise SelectionError("more than 5 arguments")
            if not arg.uses:
                continue
            self._emit(ins.mov64_reg(self._vreg_for(arg), op.ARG_REGS[arg.index]))

    # --- cleanliness -------------------------------------------------------
    def _is_narrow(self, value: ir.Value) -> bool:
        return isinstance(value.type, ir.IntType) and value.type.bits < 64

    def _is_dirty(self, value: ir.Value) -> bool:
        """True when the 64-bit register holding *value* may carry garbage
        above the value's width."""
        if not self._is_narrow(value):
            return False
        if value in self._dirty_cache:
            return self._dirty_cache[value]
        self._dirty_cache[value] = True  # breaks phi cycles pessimistically
        result = self._compute_dirty(value)
        self._dirty_cache[value] = result
        return result

    def _compute_dirty(self, value: ir.Value) -> bool:
        if isinstance(value, (ir.Constant, ir.Argument)):
            return False
        if isinstance(value, iri.Load):
            return False  # hardware loads zero-extend
        if isinstance(value, iri.Call):
            return False  # helpers return zero-extended values
        if isinstance(value, iri.ICmp):
            return False
        if isinstance(value, iri.Cast):
            if value.opcode == "zext":
                return False
            if value.opcode == "trunc":
                return True
            return self._is_dirty(value.value)
        if isinstance(value, iri.BinaryOp):
            if value.opcode == "and":
                # AND with a zero-extended operand clears the upper bits
                return self._is_dirty(value.lhs) and self._is_dirty(value.rhs)
            if value.opcode in ("or", "xor"):
                return self._is_dirty(value.lhs) or self._is_dirty(value.rhs)
            if value.opcode in ("lshr", "udiv", "urem"):
                # our lowering cleans the operands first, so these always
                # produce zero-extended results
                return False
            return True  # add/sub/mul/shl results may overflow the width
        if isinstance(value, iri.Select):
            return self._is_dirty(value.operands[1]) or self._is_dirty(
                value.operands[2]
            )
        if isinstance(value, iri.Phi):
            return any(self._is_dirty(v) for v, _ in value.incoming())
        return True

    def _emit_zero_extend(self, reg: int, bits: int) -> None:
        """Clear bits above *bits* using the canonical shl/shr pair."""
        shift = 64 - bits
        self._emit(ins.alu64("lsh", reg, imm=shift))
        self._emit(ins.alu64("rsh", reg, imm=shift))

    def _emit_sign_extend(self, reg: int, bits: int) -> None:
        shift = 64 - bits
        self._emit(ins.alu64("lsh", reg, imm=shift))
        self._emit(ins.alu64("arsh", reg, imm=shift))

    def _clean_reg(self, value: ir.Value, signed: bool = False) -> int:
        """Register holding *value* with exact (zero/sign-extended) bits."""
        reg = self.reg_of(value)
        if not self._is_narrow(value):
            return reg
        if signed:
            fresh = self._copy_to_fresh(reg)
            self._emit_sign_extend(fresh, value.type.bits)
            return fresh
        if not self._is_dirty(value):
            return reg
        fresh = self._copy_to_fresh(reg)
        self._emit_zero_extend(fresh, value.type.bits)
        return fresh

    def _copy_to_fresh(self, reg: int) -> int:
        fresh = self.low.new_vreg()
        self._emit(ins.mov64_reg(fresh, reg))
        return fresh

    # --- materialization -------------------------------------------------
    def _materialize_const(self, value: int, bits: int) -> int:
        """Load an integer constant into a fresh vreg.

        Narrow constants are kept zero-extended.  ``mov64_imm``
        sign-extends its 32-bit immediate, so any desired 64-bit pattern
        outside the signed-32 range needs the two-slot ``ld_imm64`` —
        this is why masks like ``0xf0000000`` cost two slots in Fig. 9.
        """
        reg = self.low.new_vreg()
        desired = value & ((1 << max(bits, 1)) - 1) if bits < 64 else value
        signed64 = desired - (1 << 64) if desired >> 63 else desired
        if _S32_MIN <= signed64 <= _S32_MAX:
            self._emit(ins.mov64_imm(reg, signed64))
        else:
            self._emit(ins.ld_imm64(reg, desired))
        return reg

    def reg_of(self, value: ir.Value) -> int:
        """Register (virtual or physical) currently holding *value*."""
        if isinstance(value, ir.Constant):
            return self._materialize_const(value.value, value.type.bits)
        if isinstance(value, ir.GlobalSymbol):
            reg = self.low.new_vreg()
            map_id = self.map_ids.get(value.name, 0)
            low = self._emit(ins.ld_imm64(reg, map_id))
            low.insn = low.insn.with_(src=helpers.BPF_PSEUDO_MAP_FD)
            return reg
        if isinstance(value, iri.Alloca):
            reg = self.low.new_vreg()
            self._emit(ins.mov64_reg(reg, op.FP))
            self._emit(ins.alu64("add", reg, imm=self.alloca_off[value]))
            return reg
        if isinstance(value, iri.Gep):
            return self._materialize_gep(value)
        if value in self.value_reg:
            return self.value_reg[value]
        raise SelectionError(f"value %{value.name} has no register (use before def?)")

    def _materialize_gep(self, gep: iri.Gep) -> int:
        base, const_off = self.resolve_address(gep)
        reg = self.low.new_vreg()
        self._emit(ins.mov64_reg(reg, base))
        if const_off:
            self._emit(ins.alu64("add", reg, imm=const_off))
        return reg

    def resolve_address(self, ptr: ir.Value) -> Tuple[int, int]:
        """Fold chains of constant-offset GEPs (and bitcasts):
        -> (base_reg, const_off)."""
        offset = 0
        current = ptr
        while True:
            if isinstance(current, iri.Gep) and isinstance(current.offset,
                                                           ir.Constant):
                offset += current.offset.signed
                current = current.ptr
            elif isinstance(current, iri.Cast) and current.opcode == "bitcast":
                current = current.value
            else:
                break
        if isinstance(current, iri.Alloca):
            return op.FP, self.alloca_off[current] + offset
        if isinstance(current, iri.Gep):
            # variable-offset gep: compute base + dynamic offset
            inner_base, inner_off = self.resolve_address(current.ptr)
            reg = self.low.new_vreg()
            self._emit(ins.mov64_reg(reg, inner_base))
            if inner_off:
                self._emit(ins.alu64("add", reg, imm=inner_off))
            dyn = self._clean_reg(current.offset)
            self._emit(ins.alu64("add", reg, src=dyn))
            return reg, offset
        return self.reg_of(current), offset

    # ----------------------------------------------------------- block body
    def _lower_block(self, block: ir.BasicBlock, next_block: Optional[ir.BasicBlock]) -> None:
        for instruction in block.instructions:
            if isinstance(instruction, iri.Alloca):
                if instruction not in self.alloca_off:
                    size = instruction.allocated.size_bytes
                    self.alloca_off[instruction] = self.low.alloc_stack(
                        max(size, 1), max(instruction.align, 1)
                    )
                continue
            if isinstance(instruction, iri.Phi):
                self._vreg_for(instruction)  # reserve; copies happen on edges
                continue
            if instruction.is_terminator:
                self._lower_terminator(block, instruction, next_block)
            else:
                self._lower_instruction(instruction)

    def _lower_instruction(self, instruction: iri.IRInstruction) -> None:
        if isinstance(instruction, iri.BinaryOp):
            self._lower_binop(instruction)
        elif isinstance(instruction, iri.ICmp):
            if self._icmp_fused(instruction):
                return
            self._lower_icmp_value(instruction)
        elif isinstance(instruction, iri.Load):
            self._lower_load(instruction)
        elif isinstance(instruction, iri.Store):
            self._lower_store(instruction)
        elif isinstance(instruction, iri.AtomicRMW):
            self._lower_atomicrmw(instruction)
        elif isinstance(instruction, iri.Cast):
            self._lower_cast(instruction)
        elif isinstance(instruction, iri.Gep):
            pass  # folded into users; materialized lazily by reg_of
        elif isinstance(instruction, iri.Select):
            self._lower_select(instruction)
        elif isinstance(instruction, iri.Call):
            self._lower_call(instruction)
        else:
            raise SelectionError(f"cannot lower {instruction.render()}")

    # --- arithmetic ----------------------------------------------------------
    def _lower_binop(self, instruction: iri.BinaryOp) -> None:
        opname = instruction.opcode
        if opname in ("sdiv", "srem"):
            raise SelectionError("eBPF has no signed division")
        bits = instruction.type.bits if isinstance(instruction.type, ir.IntType) else 64

        if opname == "lshr" and bits == 32 and isinstance(instruction.rhs, ir.Constant):
            self._lower_lshr32_imm(instruction)
            return

        lhs, rhs = instruction.lhs, instruction.rhs
        if opname in ("udiv", "urem", "lshr"):
            lhs_reg = self._clean_reg(lhs)
        elif opname == "ashr":
            lhs_reg = self._clean_reg(lhs, signed=True)
        else:
            lhs_reg = self.reg_of(lhs)

        dst = self._vreg_for(instruction)
        self._emit(ins.mov64_reg(dst, lhs_reg))
        name = _ALU_NAME[opname]
        if isinstance(rhs, ir.Constant) and \
                _S32_MIN <= _imm_for(rhs) <= _S32_MAX:
            self._emit(ins.alu64(name, dst, imm=_imm_for(rhs)))
        else:
            if opname in ("udiv", "urem") and self._is_narrow(rhs):
                rhs_reg = self._clean_reg(rhs)
            else:
                rhs_reg = self.reg_of(rhs)
            self._emit(ins.alu64(name, dst, src=rhs_reg))

    def _lower_lshr32_imm(self, instruction: iri.BinaryOp) -> None:
        """``lshr i32 x, k``: the Fig. 9 masked-shift pattern when the
        source register may hold garbage in the upper half."""
        k = instruction.rhs.signed  # type: ignore[union-attr]
        dst = self._vreg_for(instruction)
        src = self.reg_of(instruction.lhs)
        if not self._is_dirty(instruction.lhs):
            self._emit(ins.mov64_reg(dst, src))
            if k:
                self._emit(ins.alu64("rsh", dst, imm=k))
            return
        mask = (0xFFFFFFFF << k) & 0xFFFFFFFF
        mask_reg = self.low.new_vreg()
        self._emit(ins.ld_imm64(mask_reg, mask))
        self._emit(ins.mov64_reg(dst, src))
        self._emit(ins.alu64("and", dst, src=mask_reg))
        if k:
            self._emit(ins.alu64("rsh", dst, imm=k))

    # --- comparisons ----------------------------------------------------------
    def _icmp_fused(self, instruction: iri.ICmp) -> bool:
        """True when the compare will be folded into its single CondBr use."""
        if len(instruction.uses) != 1:
            return False
        user = instruction.uses[0]
        return isinstance(user, iri.CondBr) and user.parent is instruction.parent

    def _lower_icmp_value(self, instruction: iri.ICmp) -> None:
        """Materialize a compare into 0/1."""
        dst = self._vreg_for(instruction)
        lhs_reg, rhs_operand = self._compare_operands(instruction)
        self._emit(ins.mov64_imm(dst, 1))
        label = self._fresh_label("cset")
        self._emit_compare_jump(instruction.predicate, lhs_reg, rhs_operand, label)
        self._emit(ins.mov64_imm(dst, 0))
        self.low.label(label)

    def _compare_operands(self, instruction: iri.ICmp):
        signed = instruction.predicate in ("sgt", "sge", "slt", "sle")
        lhs_reg = self._clean_reg(instruction.lhs, signed=signed)
        rhs = instruction.rhs
        if isinstance(rhs, ir.Constant):
            imm = rhs.signed if signed else _imm_for(rhs)
            if _S32_MIN <= imm <= _S32_MAX:
                return lhs_reg, imm
        return lhs_reg, ("reg", self._clean_reg(rhs, signed=signed))

    def _emit_compare_jump(self, predicate: str, lhs_reg: int, rhs_operand,
                           label: str) -> None:
        name = _ICMP_JUMP[predicate]
        if isinstance(rhs_operand, tuple):
            self._emit(ins.jump(name, lhs_reg, src=rhs_operand[1]), target=label)
        else:
            self._emit(ins.jump(name, lhs_reg, imm=rhs_operand), target=label)

    # --- memory -------------------------------------------------------------------
    def _lower_load(self, instruction: iri.Load) -> None:
        size = instruction.type.size_bytes
        base, off = self.resolve_address(instruction.ptr)
        dst = self._vreg_for(instruction)
        align = max(1, instruction.align)
        if align >= size or size == 1:
            self._emit(ins.load(size, dst, base, off))
            return
        # decompose: unit-width loads assembled with shl/or (paper Fig. 6)
        unit = min(align, size)
        chunks = size // unit
        self._emit(ins.load(unit, dst, base, off))
        for i in range(1, chunks):
            part = self.low.new_vreg()
            self._emit(ins.load(unit, part, base, off + i * unit))
            self._emit(ins.alu64("lsh", part, imm=8 * unit * i))
            self._emit(ins.alu64("or", dst, src=part))

    def _lower_store(self, instruction: iri.Store) -> None:
        size = instruction.value.type.size_bytes
        base, off = self.resolve_address(instruction.ptr)
        align = max(1, instruction.align)
        value_reg = self.reg_of(instruction.value)  # constants materialize here
        if align >= size or size == 1:
            self._emit(ins.store_reg(size, base, off, value_reg))
            return
        unit = min(align, size)
        chunks = size // unit
        self._emit(ins.store_reg(unit, base, off, value_reg))
        for i in range(1, chunks):
            part = self.low.new_vreg()
            self._emit(ins.mov64_reg(part, value_reg))
            self._emit(ins.alu64("rsh", part, imm=8 * unit * i))
            self._emit(ins.store_reg(unit, base, off + i * unit, part))

    def _lower_atomicrmw(self, instruction: iri.AtomicRMW) -> None:
        size = instruction.type.size_bytes
        if size not in (4, 8):
            raise SelectionError("atomicrmw must be 32- or 64-bit")
        base, off = self.resolve_address(instruction.ptr)
        value_reg = self.reg_of(instruction.value)
        atomic_ops = {
            "add": op.BPF_ATOMIC_ADD,
            "and": op.BPF_ATOMIC_AND,
            "or": op.BPF_ATOMIC_OR,
            "xor": op.BPF_ATOMIC_XOR,
        }
        if instruction.rmw_op == "xchg":
            dst = self._vreg_for(instruction)
            self._emit(ins.mov64_reg(dst, value_reg))
            self._emit(
                Instruction(
                    op.BPF_STX | op.BYTES_SIZE[size] | op.BPF_ATOMIC,
                    dst=base, src=dst, off=off, imm=op.BPF_XCHG,
                )
            )
            return
        if instruction.rmw_op == "sub":
            neg = self._copy_to_fresh(value_reg)
            self._emit(ins.alu64("neg", neg))
            value_reg, rmw = neg, op.BPF_ATOMIC_ADD
        else:
            rmw = atomic_ops[instruction.rmw_op]
        if instruction.uses:
            # old value observed: fetch variant writes it into src reg
            dst = self._vreg_for(instruction)
            self._emit(ins.mov64_reg(dst, value_reg))
            self._emit(ins.atomic(size, rmw | op.BPF_FETCH, base, off, dst))
        else:
            self._emit(ins.atomic(size, rmw, base, off, value_reg))

    # --- casts -----------------------------------------------------------------
    def _lower_cast(self, instruction: iri.Cast) -> None:
        source = instruction.value
        dst = self._vreg_for(instruction)
        src_reg = self.reg_of(source)
        self._emit(ins.mov64_reg(dst, src_reg))
        if instruction.opcode == "zext" and self._is_narrow(source) and \
                self._is_dirty(source):
            self._emit_zero_extend(dst, source.type.bits)
        elif instruction.opcode == "sext" and self._is_narrow(source):
            self._emit_sign_extend(dst, source.type.bits)
        # trunc / ptrtoint / inttoptr / bitcast: pure register copies

    def _lower_select(self, instruction: iri.Select) -> None:
        dst = self._vreg_for(instruction)
        true_reg = self.reg_of(instruction.operands[1])
        self._emit(ins.mov64_reg(dst, true_reg))
        label = self._fresh_label("sel")
        cond = instruction.cond
        if isinstance(cond, iri.ICmp) and len(cond.uses) == 1:
            lhs_reg, rhs_operand = self._compare_operands(cond)
            self._emit_compare_jump(cond.predicate, lhs_reg, rhs_operand, label)
        else:
            cond_reg = self.reg_of(cond)
            self._emit(ins.jump("jne", cond_reg, imm=0), target=label)
        false_reg = self.reg_of(instruction.operands[2])
        self._emit(ins.mov64_reg(dst, false_reg))
        self.low.label(label)

    # --- calls -----------------------------------------------------------------
    def _lower_call(self, instruction: iri.Call) -> None:
        if instruction.callee not in helpers.HELPER_IDS:
            raise SelectionError(f"unknown helper {instruction.callee!r}")
        if len(instruction.operands) > len(op.ARG_REGS):
            raise SelectionError("helper calls take at most 5 arguments")
        self._call_group += 1
        group = self._call_group
        arg_regs = []
        for arg in instruction.operands:
            arg_regs.append(self.reg_of(arg))
        for i, reg in enumerate(arg_regs):
            self._emit(ins.mov64_reg(op.ARG_REGS[i], reg), group=group)
        self._emit(ins.call(helpers.HELPER_IDS[instruction.callee]), group=group)
        if not instruction.type.is_void:
            self._emit(ins.mov64_reg(self._vreg_for(instruction), op.R0))

    # --- control flow ---------------------------------------------------------------
    def _lower_terminator(self, block: ir.BasicBlock, term: iri.IRInstruction,
                          next_block: Optional[ir.BasicBlock]) -> None:
        if isinstance(term, iri.Ret):
            if term.value is not None:
                self._emit(ins.mov64_reg(op.R0, self.reg_of(term.value)))
            self._emit(ins.exit_())
            return
        if isinstance(term, iri.Br):
            self._emit_edge(block, term.target, fallthrough=term.target is next_block)
            return
        if isinstance(term, iri.CondBr):
            self._lower_condbr(block, term, next_block)
            return
        if isinstance(term, iri.Unreachable):
            self._emit(ins.exit_())
            return
        raise SelectionError(f"unknown terminator {term.render()}")

    def _lower_condbr(self, block: ir.BasicBlock, term: iri.CondBr,
                      next_block: Optional[ir.BasicBlock]) -> None:
        true_blk, false_blk = term.if_true, term.if_false
        true_needs_copies = bool(true_blk.phis())
        if true_needs_copies:
            true_label = self._fresh_label("edge")
        else:
            true_label = self.block_label[true_blk]

        cond = term.cond
        if isinstance(cond, iri.ICmp) and self._icmp_fused(cond):
            lhs_reg, rhs_operand = self._compare_operands(cond)
            self._emit_compare_jump(cond.predicate, lhs_reg, rhs_operand, true_label)
        else:
            cond_reg = self.reg_of(cond)
            self._emit(ins.jump("jne", cond_reg, imm=0), target=true_label)

        # false edge falls through here
        self._emit_edge(block, false_blk, fallthrough=false_blk is next_block
                        and not true_needs_copies)
        if true_needs_copies:
            self.low.label(true_label)
            self._emit_edge(block, true_blk, fallthrough=False)

    def _emit_edge(self, pred: ir.BasicBlock, succ: ir.BasicBlock,
                   fallthrough: bool) -> None:
        """Phi copies for edge pred->succ, then a jump unless falling through."""
        copies: List[Tuple[int, int]] = []
        for phi in succ.phis():
            value = phi.incoming_for(pred)
            copies.append((self.reg_of(value), self._vreg_for(phi)))
        self._sequence_copies(copies)
        if not fallthrough:
            self._emit(ins.jump("ja"), target=self.block_label[succ])

    def _sequence_copies(self, copies: List[Tuple[int, int]]) -> None:
        """Emit a parallel copy set as moves, breaking cycles via a temp."""
        pending = [(src, dst) for src, dst in copies if src != dst]
        while pending:
            # a copy is safe when its dst is not read by another pending copy
            safe = [
                (src, dst)
                for src, dst in pending
                if not any(o_src == dst for o_src, o_dst in pending
                           if (o_src, o_dst) != (src, dst))
            ]
            if safe:
                for src, dst in safe:
                    self._emit(ins.mov64_reg(dst, src))
                    pending.remove((src, dst))
            else:
                # cycle: rotate the first copy through a temporary
                src, dst = pending[0]
                temp = self.low.new_vreg()
                self._emit(ins.mov64_reg(temp, src))
                pending[0] = (temp, dst)


def select(func: ir.Function, module: Optional[ir.Module] = None) -> LowFunction:
    """Convenience wrapper: lower *func* to a :class:`LowFunction`."""
    return InstructionSelector(func, module).run()
