"""Final emission: resolve labels to slot-relative offsets, build the
:class:`~repro.isa.program.BpfProgram`."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..isa import BpfProgram, Instruction, ProgramType
from ..isa import opcodes as op
from .lowfunc import Label, LowFunction, LowInsn, is_vreg


class EmissionError(Exception):
    """Raised when a LowFunction cannot be emitted (unresolved labels,
    leftover virtual registers, out-of-range branch offsets)."""


def emit(
    low: LowFunction,
    prog_type: ProgramType = ProgramType.XDP,
    maps: Optional[Dict[str, object]] = None,
    mcpu: str = "v2",
    ctx_size: int = 64,
) -> BpfProgram:
    """Resolve labels and produce a loadable program."""
    # slot offset of each instruction and of each label
    label_slot: Dict[str, int] = {}
    slots: List[int] = []
    slot = 0
    for item in low.items:
        if isinstance(item, Label):
            if item.name in label_slot:
                raise EmissionError(f"duplicate label {item.name!r}")
            label_slot[item.name] = slot
        else:
            slots.append(slot)
            slot += item.insn.slots
    end_slot = slot

    insns: List[Instruction] = []
    index = 0
    for item in low.items:
        if isinstance(item, Label):
            continue
        insn = item.insn
        for reg in (insn.dst, insn.src):
            if is_vreg(reg):
                raise EmissionError(
                    f"virtual register v{reg} survived allocation in "
                    f"{low.name}"
                )
        if item.target is not None:
            if item.target not in label_slot:
                # labels at the very end of the function resolve to end
                raise EmissionError(f"undefined label {item.target!r}")
            rel = label_slot[item.target] - (slots[index] + insn.slots)
            if not -(1 << 15) <= rel < (1 << 15):
                raise EmissionError(f"branch offset {rel} out of 16-bit range")
            insn = insn.with_(off=rel)
        insns.append(insn)
        index += 1

    return BpfProgram(
        name=low.name,
        insns=insns,
        prog_type=prog_type,
        maps=dict(maps or {}),
        mcpu=mcpu,
        ctx_size=ctx_size,
    )
