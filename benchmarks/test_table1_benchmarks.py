"""Paper Table 1: details of the benchmark populations."""

from repro.eval import render_table
from repro.workloads.suites import PROFILES, compile_suite_program
from conftest import SCALE, emit


def test_table1_benchmark_details(benchmark, xdp_programs, suites):
    def build():
        rows = []
        xdp_sizes = [base.ni for base, _ in xdp_programs.values()]
        rows.append([
            "XDP", len(xdp_sizes), max(xdp_sizes), min(xdp_sizes),
            sum(xdp_sizes) // len(xdp_sizes), "v2",
        ])
        for name, programs in suites.items():
            sizes = [compile_suite_program(p).ni for p in programs]
            profile = PROFILES[name]
            rows.append([
                f"{name.capitalize()} (scale={SCALE})", len(sizes),
                max(sizes), min(sizes), sum(sizes) // len(sizes),
                profile.mcpu,
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("table1_benchmarks", render_table(
        ["Suite", "Programs", "Largest", "Smallest", "Average", "mcpu"],
        rows,
        title="Table 1: Details of Benchmarks (paper: XDP 19/1771/18/141; "
              "Sysdig 168/33765/180/1094; Tetragon 186/15673/21/3405; "
              "Tracee 129/16633/29/2654)",
    ))
