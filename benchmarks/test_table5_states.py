"""Paper Table 5: verifier peak/total state changes across kernel
versions — demonstrating why state counts are unstable metrics."""

from repro.eval import render_table, state_change_across_kernels
from repro.workloads.suites import compile_suite_program
from conftest import emit


def test_table5_state_instability(benchmark, suites, xdp_programs):
    def build():
        rows = []
        signs = set()
        cases = []
        for p in suites["sysdig"][:4]:
            cases.append((p.name,
                          compile_suite_program(p),
                          compile_suite_program(p, optimize=True)))
        for name in ("xdp-balancer", "xdp_simple_firewall"):
            base, opt = xdp_programs[name]
            cases.append((name, base, opt))
        for name, base, opt in cases:
            changes = state_change_across_kernels(base, opt,
                                                  ("5.19", "6.5"))
            for version, (peak, total) in changes.items():
                rows.append([name[:34], version,
                             f"{peak:+.2%}", f"{total:+.2%}"])
                signs.add(peak >= 0)
                signs.add(total >= 0)
        return rows, signs

    rows, signs = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("table5_state_changes", render_table(
        ["Program", "Kernel", "Peak state change", "Total state change"],
        rows,
        title="Table 5: verifier state change across kernel versions "
              "(paper: changes flip sign between versions/programs — an "
              "artifact of kernel implementation churn; our clean model "
              "shows the magnitude varying with version but not the sign, "
              "see EXPERIMENTS.md)",
    ))
    # the reproducible part of the claim: the state-change magnitude is
    # version-dependent (same program, different kernels -> different
    # changes), i.e. the metric measures the verifier, not the program
    by_program = {}
    for name, version, peak, total in rows:
        by_program.setdefault(name, []).append(float(peak.rstrip("%")))
    assert any(
        len(values) == 2 and abs(values[0] - values[1]) > 1.0
        for values in by_program.values()
    )
