"""Paper Fig. 13: Merlin's compilation costs — per-optimizer time vs
program size (13a) and the comparison against K2 (13b)."""

from repro.eval import (
    compare_with_k2,
    measure_compile_cost,
    render_table,
)
from repro.isa import ProgramType
from repro.workloads.suites import PROFILES, TRACE_CTX_SIZE
from repro.workloads.xdp import ALL_XDP, BY_NAME
from conftest import emit

OPTIMIZER_LABELS = ("DAO", "MoF", "Dep", "CC", "PO", "SLM", "CP/DCE")


def test_fig13a_per_optimizer_cost(benchmark, suites):
    def build():
        rows = []
        cases = [(w.name, w.source, w.entry, ProgramType.XDP, "v2", 24)
                 for w in ALL_XDP[:8]]
        for program in suites["sysdig"][:4]:
            cases.append((program.name, program.source, program.entry,
                          ProgramType.TRACEPOINT,
                          PROFILES["sysdig"].mcpu, TRACE_CTX_SIZE))
        for name, source, entry, prog_type, mcpu, ctx_size in cases:
            cost = measure_compile_cost(source, entry, name=name,
                                        prog_type=prog_type, mcpu=mcpu,
                                        ctx_size=ctx_size)
            row = [name[:34], cost.ni, f"{cost.total_seconds:.4f}"]
            row += [f"{cost.per_optimizer.get(label, 0.0) * 1000:.2f}"
                    for label in OPTIMIZER_LABELS]
            rows.append((cost.ni, row))
        rows.sort(key=lambda pair: pair[0])
        return [row for _, row in rows]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig13a_compile_cost", render_table(
        ["Program", "NI", "Total (s)"] + [f"{l} (ms)"
                                          for l in OPTIMIZER_LABELS],
        rows,
        title="Fig 13a: compile cost per optimizer vs program size "
              "(paper: avg 0.035s on XDP, ~linear in NI, Dep/static "
              "analysis dominates)",
    ))
    totals = [float(r[2]) for r in rows]
    assert totals[-1] >= totals[0]  # grows with size overall


def test_fig13b_merlin_vs_k2(benchmark):
    def build():
        rows = []
        for name in ("xdp1", "xdp2", "xdp_router_ipv4", "xdp_fwd",
                     "xdp-balancer"):
            w = BY_NAME[name]
            cmp = compare_with_k2(w.source, w.entry, name=name)
            rows.append([
                name, cmp.ni, f"{cmp.merlin_seconds:.4f}",
                f"{cmp.k2_seconds:.2f}",
                f"{cmp.speedup:,.0f}x" if cmp.k2_supported else "n/a",
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig13b_merlin_vs_k2_time", render_table(
        ["Program", "NI", "Merlin (s)", "K2 (s)", "Speedup"],
        rows,
        title="Fig 13b: optimization time, Merlin vs K2 (paper: ~10^6x; "
              "here K2 runs a reduced search budget, so the measured gap "
              "is 10^2-10^4x and grows with program size — K2's full "
              "search on xdp-balancer took 2 days on real hardware)",
    ))
    speedups = [float(r[4].rstrip("x").replace(",", ""))
                for r in rows if r[4] != "n/a"]
    assert all(s > 10 for s in speedups)
