"""Paper Fig. 14: xdp-balancer case study — latency and throughput as
optimizers are applied cumulatively."""

from repro.core import MerlinPipeline
from repro.eval import NetworkEval, STAGE_ORDER, render_table
from repro.frontend import compile_source
from repro.codegen import compile_function
from repro.workloads.xdp import BY_NAME
from conftest import emit


def test_fig14_balancer_case_study(benchmark):
    workload = BY_NAME["xdp-balancer"]
    ev = NetworkEval(packets=400, warmup=80)

    def build():
        module = compile_source(workload.source, workload.name)
        baseline = compile_function(module.get(workload.entry), module,
                                    ctx_size=24)
        perf0 = ev.measure(baseline, "clang")
        rows = [["clang", baseline.ni,
                 round(perf0.throughput_mpps, 3), "-", "-"]]
        clang_mpps = perf0.throughput_mpps
        for index in range(len(STAGE_ORDER)):
            enabled = set(STAGE_ORDER[: index + 1])
            module = compile_source(workload.source, workload.name)
            pipeline = MerlinPipeline(enabled=enabled)
            program, _ = pipeline.compile(module.get(workload.entry), module,
                                          ctx_size=24)
            perf = ev.measure(program, STAGE_ORDER[index])
            lat_low = ev.latency_us(perf, 0.7 * clang_mpps)
            lat_med = ev.latency_us(perf, clang_mpps)
            rows.append([
                f"+{STAGE_ORDER[index]}", program.ni,
                round(perf.throughput_mpps, 3),
                round(lat_low, 2), round(lat_med, 2),
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig14_balancer_case_study", render_table(
        ["Stage (cumulative)", "NI", "Tput (Mpps)", "Lat@low (us)",
         "Lat@med (us)"],
        rows,
        title="Fig 14: xdp-balancer with optimizers applied in sequence "
              "(paper: DAO contributes 68.2% of the throughput gain, "
              "CC 21.1%, PO 9.1%)",
    ))
    # throughput never regresses as optimizers accumulate, and the final
    # configuration beats clang
    throughputs = [row[2] for row in rows]
    assert throughputs[-1] > throughputs[0]
    # DAO (first stage) provides the largest single jump
    jumps = [throughputs[i + 1] - throughputs[i]
             for i in range(len(throughputs) - 1)]
    assert jumps[0] == max(jumps)
