"""Paper Fig. 10a-10e: code compactness across all programs, with
per-optimizer attribution and the K2 comparison on XDP."""

from repro.baselines import K2Config, K2Optimizer
from repro.eval import STAGE_ORDER, measure_compactness, pct, render_table, summarize
from repro.isa import ProgramType
from repro.workloads.suites import TRACE_CTX_SIZE, PROFILES
from repro.workloads.xdp import ALL_XDP
from conftest import emit


def _suite_results(suites, name):
    results = []
    for program in suites[name]:
        results.append(measure_compactness(
            program.source, program.entry, name=program.name,
            prog_type=ProgramType.TRACEPOINT,
            mcpu=PROFILES[name].mcpu, ctx_size=TRACE_CTX_SIZE,
        ))
    return results


def _render_suite(tag, paper_avg, results):
    rows = [
        [r.name[:34], r.ni_baseline, r.ni_final, pct(r.total_reduction),
         pct(r.contribution("dao")), pct(r.contribution("mof")),
         pct(r.contribution("cpdce")), pct(r.contribution("cc")),
         pct(r.contribution("po")), pct(r.contribution("slm")),
         "yes" if r.verified else "NO"]
        for r in results
    ]
    summary = summarize(results)
    rows.append([
        "AVERAGE", "", "", pct(summary["avg_reduction"]),
        pct(summary["contrib_dao"]), pct(summary["contrib_mof"]),
        pct(summary["contrib_cpdce"]), pct(summary["contrib_cc"]),
        pct(summary["contrib_po"]), pct(summary["contrib_slm"]),
        "all" if summary["all_verified"] else "SOME FAILED",
    ])
    return render_table(
        ["Program", "NI", "NI'", "Red.", "DAO", "MoF", "CP/DCE", "CC",
         "PO", "SLM", "Verified"],
        rows,
        title=f"Fig 10 ({tag}): NI reduction by optimizer "
              f"(paper average: {paper_avg})",
    )


def test_fig10a_sysdig(benchmark, suites):
    results = benchmark.pedantic(
        lambda: _suite_results(suites, "sysdig"), rounds=1, iterations=1)
    emit("fig10a_compactness_sysdig",
         _render_suite("Sysdig", "59.81%", results))
    assert all(r.verified for r in results)
    assert summarize(results)["avg_reduction"] > 0.35


def test_fig10b_tracee(benchmark, suites):
    results = benchmark.pedantic(
        lambda: _suite_results(suites, "tracee"), rounds=1, iterations=1)
    emit("fig10b_compactness_tracee",
         _render_suite("Tracee", "6.20%", results))
    assert all(r.verified for r in results)


def test_fig10c_tetragon(benchmark, suites):
    results = benchmark.pedantic(
        lambda: _suite_results(suites, "tetragon"), rounds=1, iterations=1)
    emit("fig10c_compactness_tetragon",
         _render_suite("Tetragon", "7.48%", results))
    assert all(r.verified for r in results)


def test_fig10d_xdp(benchmark):
    def build():
        return [
            measure_compactness(w.source, w.entry, name=w.name, ctx_size=24)
            for w in ALL_XDP
        ]

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig10d_compactness_xdp",
         _render_suite("XDP", "up to 22.22%", results))
    assert all(r.verified for r in results)
    assert all(r.total_reduction >= 0 for r in results)


def test_fig10e_xdp_vs_k2(benchmark, xdp_programs):
    """Black bars of Fig 10e: K2's reduction next to Merlin's."""

    def build():
        rows = []
        merlin_wins = 0
        optimizer = K2Optimizer(K2Config(iterations=1500))
        for w in ALL_XDP:
            baseline, merlin = xdp_programs[w.name]
            k2 = optimizer.optimize(baseline)
            merlin_red = 1 - merlin.ni / baseline.ni
            if merlin.ni <= k2.ni_after:
                merlin_wins += 1
            rows.append([w.name, baseline.ni, merlin.ni, k2.ni_after,
                         pct(merlin_red), pct(k2.ni_reduction),
                         "merlin" if merlin.ni <= k2.ni_after else "k2"])
        return rows, merlin_wins

    rows, merlin_wins = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig10e_compactness_vs_k2", render_table(
        ["Program", "NI", "Merlin", "K2", "Merlin red.", "K2 red.", "winner"],
        rows,
        title=f"Fig 10e: Merlin vs K2 on XDP — Merlin wins {merlin_wins}/19 "
              "(paper: 10/19; our K2 uses a test-based oracle instead of "
              "formal equivalence, worth about one program either way)",
    ))
    assert merlin_wins >= 8
    # the paper's headline: Merlin wins on the largest program
    balancer = next(r for r in rows if r[0] == "xdp-balancer")
    assert balancer[6] == "merlin"
