"""Paper Table 4: security-application runtime overhead under lmbench
and postmark, with Equation-1 overhead reductions."""

import pytest

from repro.eval import (
    SecuritySystem,
    average_reduction,
    pct,
    render_table,
    run_lmbench,
    run_postmark,
)
from repro.workloads.suites import PROFILES
from conftest import emit

PAPER_AVG = {"sysdig": "23.19%", "tetragon": "14.20%", "tracee": "8.67%"}


@pytest.fixture(scope="module")
def systems(suites):
    built = {}
    for name, programs in suites.items():
        built[name] = (
            SecuritySystem.from_suite(name, programs, optimize=False,
                                      mcpu=PROFILES[name].mcpu),
            SecuritySystem.from_suite(f"{name}+merlin", programs,
                                      optimize=True,
                                      mcpu=PROFILES[name].mcpu),
        )
    return built


def test_table4_lmbench_and_postmark(benchmark, systems):
    def build():
        table = {}
        for name, (original, merlin) in systems.items():
            micro = run_lmbench(original, merlin)
            macro = run_postmark(original, merlin)
            table[name] = (micro, macro)
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = []
    first_suite = next(iter(table))
    for index, micro_row in enumerate(table[first_suite][0]):
        row = [micro_row.test, f"{micro_row.vanilla_us:.2f}"]
        for name in table:
            r = table[name][0][index]
            row += [f"{r.with_original_us:.2f}", f"{r.with_merlin_us:.2f}",
                    pct(r.reduction)]
        rows.append(row)
    avg_row = ["Average", ""]
    for name in table:
        avg_row += ["", "", pct(average_reduction(table[name][0]))]
    rows.append(avg_row)
    pm_row = ["Postmark (s)", f"{table[first_suite][1].vanilla_us:.2f}"]
    for name in table:
        macro = table[name][1]
        pm_row += [f"{macro.with_original_us:.2f}",
                   f"{macro.with_merlin_us:.2f}", pct(macro.reduction)]
    rows.append(pm_row)

    headers = ["Test", "Vanilla"]
    for name in table:
        headers += [f"{name} w/o", f"{name} w/", f"{name} red."]
    emit("table4_overhead", render_table(
        headers, rows,
        title="Table 4: Security application benchmarks (lmbench us / "
              f"postmark s). Paper averages: {PAPER_AVG}",
    ))

    for name, (micro, macro) in table.items():
        assert average_reduction(micro) > 0, name
        assert macro.reduction >= 0, name
    # ordering: Sysdig benefits most (paper: 23.19% > 14.20% > 8.67%)
    reductions = {name: average_reduction(micro)
                  for name, (micro, _) in table.items()}
    assert reductions["sysdig"] > reductions["tetragon"]
    assert reductions["sysdig"] > reductions["tracee"]
