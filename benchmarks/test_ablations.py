"""Ablations of the design choices called out in DESIGN.md."""

from repro.core import MerlinPipeline
from repro.core.ir_passes.alignment import AlignmentInferencePass
from repro.eval import pct, render_table
from repro.frontend import compile_source
from repro.codegen import compile_function
from repro.baselines import K2Config, K2Optimizer
from repro.verifier import Verifier, verify
from repro.workloads.xdp import BY_NAME
from conftest import emit


def test_ablation_bytecode_tier(benchmark, xdp_programs):
    """The paper's multi-tier argument: CC and PO cannot be expressed at
    the IR level, so dropping the bytecode tier leaves NI on the table."""

    def build():
        rows = []
        for name in ("xdp2", "xdp-balancer", "cil_lb4"):
            w = BY_NAME[name]
            module = compile_source(w.source, w.name)
            ir_only = MerlinPipeline(enabled={"dao", "mof", "cpdce", "slm"})
            prog_ir, _ = ir_only.compile(module.get(w.entry), module,
                                         ctx_size=24)
            module = compile_source(w.source, w.name)
            full = MerlinPipeline()
            prog_full, rep = full.compile(module.get(w.entry), module,
                                          ctx_size=24)
            rows.append([name, rep.ni_original, prog_ir.ni, prog_full.ni,
                         prog_ir.ni - prog_full.ni])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_bytecode_tier", render_table(
        ["Program", "NI", "IR tier only", "Both tiers", "Bytecode-tier gain"],
        rows,
        title="Ablation: IR tier alone vs full multi-tier pipeline",
    ))
    assert all(row[3] <= row[2] for row in rows)
    assert any(row[4] > 0 for row in rows)


def test_ablation_dao_inference(benchmark):
    """DAO's value is the pointer-offset inference: with it disabled the
    aligned loads stay byte-decomposed."""

    def build():
        w = BY_NAME["xdp2"]
        module = compile_source(w.source, w.name)
        func = module.get(w.entry)
        naive = compile_function(func, module, ctx_size=24)
        module2 = compile_source(w.source, w.name)
        func2 = module2.get(w.entry)
        AlignmentInferencePass().run(func2, module2)
        inferred = compile_function(func2, module2, ctx_size=24)
        return naive.ni, inferred.ni

    naive_ni, inferred_ni = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_dao", render_table(
        ["Variant", "NI"],
        [["no alignment inference", naive_ni],
         ["with alignment inference", inferred_ni]],
        title="Ablation: DAO pointer-offset inference on xdp2",
    ))
    assert inferred_ni < naive_ni


def test_ablation_verifier_pruning(benchmark, xdp_programs):
    """State pruning keeps NPI manageable; without it NPI blows up."""

    def build():
        base, _ = xdp_programs["xdp_simple_firewall"]
        normal = verify(base)
        verifier = Verifier(base)
        verifier.config = verifier.config  # default
        # disable pruning by clearing the stored-state mechanism
        verifier.branch_targets = set()
        verifier.backedge_targets = set()
        unpruned = verifier.verify()
        return normal, unpruned

    normal, unpruned = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_verifier_pruning", render_table(
        ["Variant", "NPI", "states"],
        [["with pruning", normal.npi, normal.total_states],
         ["without pruning", unpruned.npi, unpruned.total_states]],
        title="Ablation: verifier state pruning on xdp_simple_firewall",
    ))
    assert unpruned.npi >= normal.npi


def test_ablation_k2_budget(benchmark, xdp_programs):
    """More search budget helps K2 on small programs but the gap to
    Merlin on large programs persists."""

    def build():
        base, merlin = xdp_programs["xdp2"]
        small = K2Optimizer(K2Config(iterations=300)).optimize(base)
        large = K2Optimizer(K2Config(iterations=3000)).optimize(base)
        return base.ni, merlin.ni, small.ni_after, large.ni_after

    ni, merlin_ni, small_ni, large_ni = benchmark.pedantic(
        build, rounds=1, iterations=1)
    emit("ablation_k2_budget", render_table(
        ["Variant", "NI"],
        [["baseline", ni], ["K2 x300 proposals", small_ni],
         ["K2 x3000 proposals", large_ni], ["Merlin", merlin_ni]],
        title="Ablation: K2 search budget sensitivity on xdp2",
    ))
    assert large_ni <= small_ni
