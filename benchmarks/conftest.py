"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one paper table/figure.  Rendered tables are
written to ``benchmarks/results/*.txt`` and printed, so the bench run
leaves a complete record of the reproduced numbers (EXPERIMENTS.md
summarizes them against the paper's).

Scale note: suite populations are generated at SCALE < 1 of Table 1's
program counts/sizes so the pure-Python toolchain finishes in minutes;
the *relative* metrics (reductions, ratios, orderings) are what the
paper's claims are about.
"""

import pathlib

import pytest

from repro.baselines import K2Config, K2Optimizer
from repro.eval import NetworkEval
from repro.workloads.suites import generate_suite
from repro.workloads.xdp import ALL_XDP, BY_NAME, FORWARDING, compile_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: suite generation scale (fraction of Table 1 sizes; counts capped)
SCALE = 0.2
SUITE_COUNT = 12
SEED = 2024

K2_ITERATIONS = 2000


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def xdp_programs():
    """name -> (baseline, merlin) for all 19 XDP workloads."""
    return {
        w.name: (compile_workload(w), compile_workload(w, optimize=True))
        for w in ALL_XDP
    }


@pytest.fixture(scope="session")
def suites():
    """suite name -> list of generated SuiteProgram."""
    return {
        name: generate_suite(name, seed=SEED, scale=SCALE, count=SUITE_COUNT)
        for name in ("sysdig", "tetragon", "tracee")
    }


@pytest.fixture(scope="session")
def forwarding_perfs(xdp_programs):
    """Measured clang/k2/merlin PacketPerf for the 4 forwarding programs."""
    ev = NetworkEval(packets=600, warmup=100)
    perfs = {}
    for name in FORWARDING:
        baseline, merlin = xdp_programs[name]
        k2 = K2Optimizer(K2Config(iterations=K2_ITERATIONS)).optimize(baseline)
        perfs[name] = {
            "clang": ev.measure(baseline, f"{name}/clang"),
            "k2": ev.measure(k2.program, f"{name}/k2"),
            "merlin": ev.measure(merlin, f"{name}/merlin"),
        }
    return ev, perfs
