"""Paper Table 3: throughput and latency of the forwarding programs
under clang / K2 / Merlin."""

from repro.eval import LOAD_LEVELS, pct, render_table
from conftest import emit


def test_table3_throughput_latency(benchmark, forwarding_perfs):
    ev, perfs = forwarding_perfs

    def build():
        rows = []
        for name, variants in perfs.items():
            row = ev.table3_row(variants)
            table_row = [name]
            for variant in ("clang", "k2", "merlin"):
                table_row.append(round(row[f"throughput_{variant}"], 3))
            for level in LOAD_LEVELS:
                for variant in ("clang", "k2", "merlin"):
                    table_row.append(
                        round(row[f"latency_{level}_{variant}"], 2))
            rows.append(table_row)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["Program", "Tput clang", "Tput k2", "Tput merlin"]
    for level in LOAD_LEVELS:
        headers += [f"{level[:3]} clang", f"{level[:3]} k2",
                    f"{level[:3]} merlin"]
    emit("table3_throughput_latency", render_table(
        headers, rows,
        title="Table 3: Throughput (Mpps) and latency (us) under 4 loads "
              "(paper: Merlin up to +3.55% tput vs clang, +0.59% vs K2; "
              "latency -5.31% vs K2)",
    ))
    # shape assertions: Merlin's throughput beats clang everywhere, and
    # its latency at every load level is no worse than clang's
    for row in rows:
        assert row[3] > row[1], row[0]  # merlin > clang throughput
    # on the largest program Merlin beats K2 too (paper's key claim)
    balancer = next(r for r in rows if r[0] == "xdp-balancer")
    assert balancer[3] >= balancer[2]
