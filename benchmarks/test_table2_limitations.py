"""Paper Table 2: limitations of K2 vs Merlin (feature matrix,
demonstrated empirically rather than just asserted)."""

from repro.baselines import K2Optimizer, K2_PRACTICAL_SIZE, K2_SUPPORTED_HELPERS
from repro.core import MerlinPipeline
from repro.eval import render_table
from repro.isa import BpfProgram, ProgramType, assemble
from repro.verifier import DEFAULT_KERNEL
from repro.workloads.suites import compile_suite_program
from conftest import emit


def test_table2_limitations(benchmark, suites):
    def build():
        k2 = K2Optimizer()
        # 1. instruction set: K2 supports v2 XDP only; Merlin any class
        tracepoint = compile_suite_program(suites["tracee"][0])
        k2_tp = k2.optimize(tracepoint)
        merlin_tp, _ = MerlinPipeline().optimize_program(tracepoint)
        # 2. helpers: K2 rejects unmodelled helpers
        perf_prog = BpfProgram("p", assemble("call 25\nexit"))
        k2_helper_ok, _ = k2.check_supported(perf_prog)
        # 3. size: K2's budget collapses on big programs
        small_budget = k2._iteration_budget(100)
        big_budget = k2._iteration_budget(20000)
        return {
            "k2_tracepoint_supported": k2_tp.supported,
            "merlin_tracepoint_shrunk": merlin_tp.ni <= tracepoint.ni,
            "k2_helper_supported": k2_helper_ok,
            "k2_budget_small": small_budget,
            "k2_budget_big": big_budget,
        }

    facts = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        ["Instruction set", "v2, XDP only", "any (v2/v3, all classes)"],
        ["Helper functions",
         f"limited ({len(K2_SUPPORTED_HELPERS)} modelled)", "all"],
        ["Maps", "limited", "all"],
        ["Practical size*",
         f"<{K2_PRACTICAL_SIZE} (budget {facts['k2_budget_big']} proposals "
         f"at NI=20000 vs {facts['k2_budget_small']} at NI=100)",
         f"{DEFAULT_KERNEL.max_insns:,} (verifier limit)"],
    ]
    emit("table2_limitations", render_table(
        ["Dimension", "K2", "Merlin"], rows,
        title="Table 2: Limitation of K2 and Merlin",
    ))
    assert not facts["k2_tracepoint_supported"]
    assert facts["merlin_tracepoint_shrunk"]
    assert not facts["k2_helper_supported"]
    assert facts["k2_budget_big"] < facts["k2_budget_small"]
