"""Paper Fig. 11: hardware performance counters of the XDP programs
(cache misses, branch misses, context switches; xdp-balancer detail)."""

from repro.eval import render_table
from conftest import emit


def test_fig11_hardware_counters(benchmark, forwarding_perfs):
    ev, perfs = forwarding_perfs

    def build():
        rows = []
        for name, variants in perfs.items():
            clang_tput = variants["clang"].throughput_mpps
            best = max(p.throughput_mpps for p in variants.values())
            for level, offered in (("low", 0.7 * clang_tput),
                                   ("saturate", 1.15 * best)):
                for variant in ("clang", "k2", "merlin"):
                    window = ev.counters_in_window(variants[variant], offered)
                    rows.append([
                        name, level, variant,
                        window.cache_references, window.cache_misses,
                        f"{window.cache_miss_rate:.4f}",
                        window.branch_misses, window.context_switches,
                    ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig11_xdp_counters", render_table(
        ["Program", "Load", "Variant", "Cache refs", "Cache miss",
         "Miss rate", "Branch miss", "Ctx switches"],
        rows,
        title="Fig 11: hardware counters over a 5s window "
              "(paper: Merlin lowers context switches to 85% on "
              "xdp-balancer where K2 reaches only 93%)",
    ))
    # Merlin's context switches under saturate never exceed clang's
    by_key = {(r[0], r[1], r[2]): r for r in rows}
    for name in perfs:
        clang_cs = by_key[(name, "saturate", "clang")][7]
        merlin_cs = by_key[(name, "saturate", "merlin")][7]
        assert merlin_cs <= clang_cs


def test_fig11d_balancer_detail(benchmark, forwarding_perfs):
    ev, perfs = forwarding_perfs

    def build():
        variants = perfs["xdp-balancer"]
        return [
            [variant,
             round(perf.cycles_per_packet, 1),
             round(perf.instructions_per_packet, 1),
             perf.counters.cache_references,
             perf.counters.cache_misses,
             perf.counters.branch_misses]
            for variant, perf in variants.items()
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig11d_balancer_counters", render_table(
        ["Variant", "Cycles/pkt", "Insns/pkt", "Cache refs", "Cache miss",
         "Branch miss"],
        rows,
        title="Fig 11d: xdp-balancer per-stream counters (paper: Merlin "
              "cuts total cache references; miss *rate* may rise as "
              "references drop)",
    ))
    clang = next(r for r in rows if r[0] == "clang")
    merlin = next(r for r in rows if r[0] == "merlin")
    assert merlin[1] < clang[1]  # fewer cycles per packet
    assert merlin[3] <= clang[3]  # no more cache references
