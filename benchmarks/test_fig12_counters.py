"""Paper Fig. 12: hardware counters of the security applications
(instructions, CPU cycles, cache and branch stats as % of original)."""

import pytest

from repro.eval import SecuritySystem, render_table
from repro.workloads.suites import PROFILES
from repro.workloads.syscalls import LMBENCH_TESTS, POSTMARK
from conftest import emit


@pytest.fixture(scope="module")
def sysdig_pair(suites):
    programs = suites["sysdig"]
    return (
        SecuritySystem.from_suite("sysdig", programs, optimize=False,
                                  mcpu=PROFILES["sysdig"].mcpu),
        SecuritySystem.from_suite("sysdig+merlin", programs, optimize=True,
                                  mcpu=PROFILES["sysdig"].mcpu),
    )


def test_fig12_security_counters(benchmark, sysdig_pair):
    original, merlin = sysdig_pair

    def build():
        rows = []
        workloads = [(t.name, t.events) for t in LMBENCH_TESTS]
        workloads.append((POSTMARK.name, POSTMARK.events))
        for name, events in workloads:
            orig = original.event_counters(events)
            opt = merlin.event_counters(events)
            if orig.instructions == 0:
                continue
            rows.append([
                name,
                orig.instructions, opt.instructions,
                f"{opt.instructions / orig.instructions:.2%}",
                orig.cycles, opt.cycles,
                f"{opt.cycles / max(orig.cycles, 1):.2%}",
                f"{orig.cache_miss_rate:.3f}", f"{opt.cache_miss_rate:.3f}",
                f"{orig.branch_miss_rate:.3f}", f"{opt.branch_miss_rate:.3f}",
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("fig12_security_counters", render_table(
        ["Test", "Insns w/o", "Insns w/", "Insn %", "Cycles w/o",
         "Cycles w/", "Cycle %", "CMiss w/o", "CMiss w/", "BMiss w/o",
         "BMiss w/"],
        rows,
        title="Fig 12: security-app hardware counters (paper: Merlin saves "
              "instructions and CPU cycles on every test; cache/branch "
              "miss deltas are noise at micro scale)",
    ))
    for row in rows:
        assert row[2] <= row[1], row[0]  # never more instructions
        assert row[5] <= row[4], row[0]  # never more cycles
