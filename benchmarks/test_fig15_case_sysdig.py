"""Paper Fig. 15: Sysdig case study — overhead/NI/NPI/verification-time
reduction as optimizers are applied cumulatively, plus the average-
alignment shift that explains DAO's dominance."""

from repro.core import MerlinPipeline, average_alignment
from repro.eval import STAGE_ORDER, pct, render_table
from repro.frontend import compile_source
from repro.codegen import compile_function
from repro.isa import ProgramType
from repro.verifier import verify
from repro.vm import Machine
from repro.workloads.suites import PROFILES, TRACE_CTX_SIZE
from conftest import emit


def _event_cycles(program, samples=8):
    import random

    machine = Machine(program)
    rng = random.Random(3)
    total = 0
    for _ in range(samples):
        ctx = bytes(rng.randrange(256) for _ in range(TRACE_CTX_SIZE))
        total += machine.run(ctx=ctx).counters.cycles
    return total / samples


def test_fig15_sysdig_case_study(benchmark, suites):
    programs = suites["sysdig"][:5]

    def build():
        # baseline aggregates
        base_ni = base_npi = 0
        base_cycles = base_time = 0.0
        for p in programs:
            module = compile_source(p.source, p.name)
            prog = compile_function(module.get(p.entry), module,
                                    prog_type=ProgramType.TRACEPOINT,
                                    mcpu=PROFILES["sysdig"].mcpu,
                                    ctx_size=TRACE_CTX_SIZE)
            base_ni += prog.ni
            res = verify(prog)
            base_npi += res.npi
            base_time += res.verification_time_ns
            base_cycles += _event_cycles(prog)
        rows = []
        align_before = align_after = 0.0
        for index in range(len(STAGE_ORDER)):
            enabled = set(STAGE_ORDER[: index + 1])
            ni = npi = 0
            cycles = time_ns = 0.0
            for p in programs:
                module = compile_source(p.source, p.name)
                func = module.get(p.entry)
                if index == 0:
                    align_before += average_alignment(func) / len(programs)
                pipeline = MerlinPipeline(enabled=enabled)
                prog, _ = pipeline.compile(
                    func, module, prog_type=ProgramType.TRACEPOINT,
                    mcpu=PROFILES["sysdig"].mcpu, ctx_size=TRACE_CTX_SIZE)
                if index == 0:
                    align_after += average_alignment(func) / len(programs)
                ni += prog.ni
                res = verify(prog)
                npi += res.npi
                time_ns += res.verification_time_ns
                cycles += _event_cycles(prog)
            rows.append([
                f"+{STAGE_ORDER[index]}",
                pct(1 - ni / base_ni),
                pct(1 - npi / base_npi),
                pct(1 - time_ns / base_time),
                pct(1 - cycles / base_cycles),
            ])
        return rows, align_before, align_after

    rows, align_before, align_after = benchmark.pedantic(
        build, rounds=1, iterations=1)
    emit("fig15_sysdig_case_study", render_table(
        ["Stage (cumulative)", "NI red.", "NPI red.", "Verif. time red.",
         "Runtime cycles red."],
        rows,
        title="Fig 15: Sysdig case study "
              f"(avg memory-op alignment {align_before:.2f} -> "
              f"{align_after:.2f}; paper: 3.85 -> 4.81, with DAO "
              "dominating every reduction)",
    ))
    assert align_after > align_before
    # DAO (stage 1) already provides the bulk of the final NI reduction
    first = float(rows[0][1].rstrip("%"))
    final = float(rows[-1][1].rstrip("%"))
    assert first > 0.6 * final
