"""Paper Fig. 10f: verifier NPI and verification-time reductions."""

from repro.eval import compare_verifier_cost, pct, render_table
from repro.workloads.suites import compile_suite_program
from conftest import emit


def test_fig10f_verifier_cost(benchmark, xdp_programs, suites):
    def build():
        rows = []
        pairs = [(name, base, opt)
                 for name, (base, opt) in xdp_programs.items()]
        for program in suites["sysdig"][:6]:
            pairs.append((
                program.name,
                compile_suite_program(program),
                compile_suite_program(program, optimize=True),
            ))
        for name, base, opt in pairs:
            cmp = compare_verifier_cost(base, opt, name=name)
            rows.append([
                name[:34], cmp.npi_before, cmp.npi_after,
                pct(cmp.npi_reduction), pct(cmp.time_reduction),
                "yes" if cmp.both_ok else "NO",
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    npi_reds = [float(r[3].rstrip("%")) for r in rows]
    time_reds = [float(r[4].rstrip("%")) for r in rows]
    rows.append(["AVERAGE", "", "",
                 f"{sum(npi_reds)/len(npi_reds):.2f}%",
                 f"{sum(time_reds)/len(time_reds):.2f}%", ""])
    emit("fig10f_verifier_stats", render_table(
        ["Program", "NPI", "NPI'", "NPI red.", "Time red.", "Both verify"],
        rows,
        title="Fig 10f: verifier cost (paper: NPI up to 89.6%, avg 17.1%; "
              "time up to 85.2%, avg 25.4%)",
    ))
    assert all(r[-1] != "NO" for r in rows[:-1])
    assert sum(npi_reds) / len(npi_reds) > 5.0
