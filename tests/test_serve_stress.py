"""Stress and soak tests for the serve daemon (slow marker).

Run with ``pytest -m slow tests/test_serve_stress.py``.  The soak
drives >=4 concurrent clients through hundreds of Zipf-skewed
requests and checks the daemon's production invariants: zero dropped
responses, a warm-cache hit-rate floor, bounded RSS growth, and
graceful survival of fault injection (malformed lines, oversized
programs, abrupt disconnects) and of losing the cache directory
mid-flight.  Everything is deterministic under the fixed seeds.
"""

import os
import shutil

import pytest

from repro.serve import (
    DaemonThread,
    FaultPlan,
    ServeClient,
    ServeConfig,
    build_pool,
    run_load,
    zipf_stream,
)

pytestmark = pytest.mark.slow

SOAK_CLIENTS = 4
SOAK_REQUESTS = 200          # per client, per wave
SOAK_UNIQUE = 16
SOAK_SEED = 7


def rss_bytes() -> int:
    with open("/proc/self/statm") as handle:
        return int(handle.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")


@pytest.fixture(scope="module")
def pool():
    return build_pool(SOAK_UNIQUE, seed=SOAK_SEED, prefilter="full")


class TestSoak:
    def test_zipf_soak_no_drops_and_hit_rate_floor(self, pool):
        """>=4 clients x >=200 requests each, twice over: nothing
        dropped, everything ok, and the Zipf head keeps the shared
        cache hot."""
        config = ServeConfig(max_batch=16, max_delay=0.005)
        with DaemonThread(config) as handle:
            first = run_load(handle.address, pool,
                             requests=SOAK_REQUESTS, clients=SOAK_CLIENTS,
                             seed=SOAK_SEED, depth=8)
            rss_after_warmup = rss_bytes()
            second = run_load(handle.address, pool,
                              requests=SOAK_REQUESTS, clients=SOAK_CLIENTS,
                              seed=SOAK_SEED + 1, depth=8)
            rss_after_soak = rss_bytes()
            # the responded counter ticks *after* the bytes hit the
            # socket, so the last client can finish a beat before the
            # daemon's writer coroutine catches up — wait it out
            import time

            total_expected = 2 * SOAK_CLIENTS * SOAK_REQUESTS
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                stats = handle.daemon.snapshot()
                if stats["requests"]["responded"] >= total_expected:
                    break
                time.sleep(0.01)

        for wave in (first, second):
            assert wave.failures == []
            assert wave.dropped == 0
            assert wave.ok == wave.sent == SOAK_CLIENTS * SOAK_REQUESTS
            assert wave.errors == {}

        # hit-rate floor: only the first sighting of each of the
        # SOAK_UNIQUE programs may miss
        total = 2 * SOAK_CLIENTS * SOAK_REQUESTS
        assert stats["cache"]["hit_rate"] >= 1.0 - (SOAK_UNIQUE * 2) / total
        assert stats["cache"]["hit_rate"] >= 0.9

        # every response was written and accounted
        assert stats["requests"]["responded"] >= total
        assert stats["requests"]["compiles"] == total

        # bounded memory: the reservoirs and cache are size-capped, so
        # a second full wave must not grow the process meaningfully
        growth = rss_after_soak - rss_after_warmup
        assert growth < 64 * 1024 * 1024, f"RSS grew {growth} bytes"

        # admission batching engaged under concurrent load
        assert stats["batches"]["max_size"] > 1

    def test_soak_is_deterministic_under_fixed_seed(self, pool):
        """Same seed, fresh daemon: identical request streams and
        identical client-side tallies."""
        streams = [
            [zipf_stream(__import__("random").Random(SOAK_SEED * 7_919 + w),
                         len(pool), 50) for w in range(SOAK_CLIENTS)]
            for _ in range(2)
        ]
        assert streams[0] == streams[1]

        tallies = []
        for _ in range(2):
            config = ServeConfig(max_batch=16, max_delay=0.005)
            with DaemonThread(config) as handle:
                result = run_load(handle.address, pool, requests=50,
                                  clients=SOAK_CLIENTS, seed=SOAK_SEED,
                                  depth=4)
            tallies.append((result.sent, result.ok, result.errors,
                            result.faults, result.dropped))
        assert tallies[0] == tallies[1]

    def test_pool_generation_deterministic(self):
        again = build_pool(SOAK_UNIQUE, seed=SOAK_SEED, prefilter="full")
        reference = build_pool(SOAK_UNIQUE, seed=SOAK_SEED,
                               prefilter="full")
        assert [p.source for p in again] == [p.source for p in reference]
        assert [p.entry for p in again] == [p.entry for p in reference]


class TestFaultInjection:
    def test_fault_soak_daemon_survives(self, pool):
        """Protocol abuse mixed into real load: every fault is answered
        or accounted, no real request is dropped, and the daemon still
        serves afterwards."""
        faults = FaultPlan(malformed=0.05, oversized=0.02,
                           unknown_op=0.03, disconnect=0.03)
        config = ServeConfig(max_batch=16, max_delay=0.005)
        with DaemonThread(config) as handle:
            result = run_load(handle.address, pool, requests=100,
                              clients=SOAK_CLIENTS, seed=11, depth=4,
                              faults=faults)
            # the daemon survived the abuse and still answers
            with ServeClient(handle.address) as probe:
                assert probe.ping()["ok"] is True
            stats = handle.daemon.snapshot()

        assert result.failures == []
        assert result.dropped == 0
        # the deterministic seed injects every fault kind at least once
        for kind in ("malformed", "oversized", "unknown_op", "disconnect"):
            assert result.faults.get(kind, 0) >= 1, result.faults
        # injected faults surface as the matching protocol errors
        assert result.errors.get("bad-json", 0) >= 1
        assert result.errors.get("oversized", 0) >= 1
        assert result.errors.get("unknown-op", 0) >= 1
        assert stats["requests"]["protocol_errors"] >= 3
        # disconnect victims are torn-down connections, not hangs
        assert stats["connections"]["opened"] > SOAK_CLIENTS

    def test_fault_soak_deterministic(self, pool):
        faults = FaultPlan(malformed=0.05, oversized=0.02,
                           unknown_op=0.03, disconnect=0.03)
        tallies = []
        for _ in range(2):
            config = ServeConfig(max_batch=16, max_delay=0.005)
            with DaemonThread(config) as handle:
                result = run_load(handle.address, pool, requests=60,
                                  clients=2, seed=11, depth=4,
                                  faults=faults)
            tallies.append((result.sent, result.ok, result.errors,
                            result.faults, result.dropped))
        assert tallies[0] == tallies[1]


class TestCacheDirLoss:
    def test_cache_dir_replaced_by_file_degrades_gracefully(
            self, tmp_path, pool):
        """Losing the disk store mid-flight (dir becomes unwritable /
        unreadable) must degrade to memory-only service, not crash."""
        cache_dir = tmp_path / "store"
        config = ServeConfig(cache_dir=str(cache_dir), max_delay=0.005)
        with DaemonThread(config) as handle:
            with ServeClient(handle.address) as client:
                warm = pool[0]
                client.compile(warm.source, name=warm.name,
                               entry=warm.entry, prog_type=warm.prog_type,
                               ctx_size=warm.ctx_size)
                # now the store vanishes: a plain file sits where the
                # directory was (NotADirectoryError on every disk path;
                # chmod tricks don't work for root, this does)
                shutil.rmtree(cache_dir)
                cache_dir.write_text("disk is gone")

                fresh = pool[1]
                response = client.compile(
                    fresh.source, name=fresh.name, entry=fresh.entry,
                    prog_type=fresh.prog_type, ctx_size=fresh.ctx_size)
                assert response["ok"] is True

                # the memory tier still serves repeats
                repeat = client.compile(
                    fresh.source, name=fresh.name, entry=fresh.entry,
                    prog_type=fresh.prog_type, ctx_size=fresh.ctx_size)
                assert repeat["result"]["cached"] is True
            stats = handle.daemon.snapshot()

        assert stats["cache"]["write_errors"] >= 1
        assert stats["requests"]["compiles"] == 3

    def test_load_continues_after_cache_dir_loss(self, tmp_path, pool):
        cache_dir = tmp_path / "store"
        config = ServeConfig(cache_dir=str(cache_dir), max_delay=0.005)
        with DaemonThread(config) as handle:
            run_load(handle.address, pool, requests=20, clients=2,
                     seed=3, depth=4)
            shutil.rmtree(cache_dir)
            cache_dir.write_text("disk is gone")
            result = run_load(handle.address, pool, requests=20,
                              clients=2, seed=4, depth=4)
        assert result.failures == []
        assert result.dropped == 0
        assert result.ok == result.sent
