"""Verifier tests: safety rules, NPI accounting, kernel configs."""

import pytest

from repro.isa import BpfProgram, MapSpec, assemble
from repro.verifier import DEFAULT_KERNEL, KERNELS, verify


def check(asm: str, maps=None, ctx_size: int = 24, prog_type="xdp",
          kernel=DEFAULT_KERNEL, mcpu="v2"):
    from repro.isa import ProgramType

    program = BpfProgram(
        "t", assemble(asm), prog_type=ProgramType(prog_type),
        maps=maps or {}, ctx_size=ctx_size, mcpu=mcpu,
    )
    return verify(program, kernel)


GOOD_PACKET_READ = """
    r2 = *(u64 *)(r1 + 0)
    r3 = *(u64 *)(r1 + 8)
    r4 = r2
    r4 += 14
    if r4 > r3 goto out
    r0 = *(u8 *)(r2 + 13)
    exit
out:
    r0 = 0
    exit
"""


class TestAccepts:
    def test_trivial(self):
        assert check("r0 = 0\nexit").ok

    def test_packet_access_after_bounds_check(self):
        assert check(GOOD_PACKET_READ).ok

    def test_stack_roundtrip(self):
        assert check("""
            r1 = 7
            *(u64 *)(r10 - 8) = r1
            r0 = *(u64 *)(r10 - 8)
            exit
        """).ok

    def test_map_lookup_with_null_check(self):
        maps = {"m": MapSpec("m", "array", 4, 8, 4)}
        assert check("""
            *(u32 *)(r10 - 4) = 0
            r2 = r10
            r2 += -4
            r1 = 1 ll
            call 1
            if r0 == 0 goto out
            r1 = *(u64 *)(r0 + 0)
        out:
            r0 = 0
            exit
        """, maps=maps).ok

    def test_spilled_pointer_restored(self):
        assert check("""
            r2 = *(u64 *)(r1 + 0)
            r3 = *(u64 *)(r1 + 8)
            *(u64 *)(r10 - 8) = r2
            r4 = r2
            r4 += 10
            if r4 > r3 goto out
            r5 = *(u64 *)(r10 - 8)
            r0 = *(u8 *)(r5 + 9)
            exit
        out:
            r0 = 0
            exit
        """).ok

    def test_bounded_loop(self):
        result = check("""
            r1 = 0
            r0 = 0
        loop:
            r0 += r1
            r1 += 1
            if r1 < 16 goto loop
            exit
        """)
        assert result.ok
        assert result.npi > 16  # loop body walked per iteration

    def test_variable_packet_offset_with_bounds(self):
        assert check("""
            r2 = *(u64 *)(r1 + 0)
            r3 = *(u64 *)(r1 + 8)
            r4 = r2
            r4 += 64
            if r4 > r3 goto out
            r5 = *(u8 *)(r2 + 0)
            r5 &= 0x1f
            r2 += r5
            r0 = *(u8 *)(r2 + 0)
            exit
        out:
            r0 = 0
            exit
        """).ok


class TestRejects:
    def test_uninitialized_register(self):
        result = check("r0 = r5\nexit")
        assert not result.ok
        assert "read_ok" in result.reason

    def test_uninitialized_stack_read(self):
        result = check("r0 = *(u64 *)(r10 - 16)\nexit")
        assert not result.ok
        assert "uninitialized" in result.reason

    def test_packet_access_without_check(self):
        result = check("""
            r2 = *(u64 *)(r1 + 0)
            r0 = *(u8 *)(r2 + 0)
            exit
        """)
        assert not result.ok
        assert "packet" in result.reason

    def test_packet_access_beyond_checked_range(self):
        result = check("""
            r2 = *(u64 *)(r1 + 0)
            r3 = *(u64 *)(r1 + 8)
            r4 = r2
            r4 += 14
            if r4 > r3 goto out
            r0 = *(u8 *)(r2 + 14)
            exit
        out:
            r0 = 0
            exit
        """)
        assert not result.ok

    def test_map_value_without_null_check(self):
        maps = {"m": MapSpec("m", "array", 4, 8, 4)}
        result = check("""
            *(u32 *)(r10 - 4) = 0
            r2 = r10
            r2 += -4
            r1 = 1 ll
            call 1
            r1 = *(u64 *)(r0 + 0)
            r0 = 0
            exit
        """, maps=maps)
        assert not result.ok
        assert "NULL" in result.reason

    def test_map_value_out_of_bounds(self):
        maps = {"m": MapSpec("m", "array", 4, 8, 4)}
        result = check("""
            *(u32 *)(r10 - 4) = 0
            r2 = r10
            r2 += -4
            r1 = 1 ll
            call 1
            if r0 == 0 goto out
            r1 = *(u64 *)(r0 + 8)
        out:
            r0 = 0
            exit
        """, maps=maps)
        assert not result.ok

    def test_write_to_ctx(self):
        result = check("*(u32 *)(r1 + 0) = 1\nr0 = 0\nexit")
        assert not result.ok

    def test_frame_pointer_write(self):
        result = check("r10 = 5\nr0 = 0\nexit")
        assert not result.ok

    def test_stack_out_of_bounds(self):
        result = check("r1 = 0\n*(u64 *)(r10 - 520) = r1\nr0 = 0\nexit")
        assert not result.ok

    def test_misaligned_stack_access(self):
        result = check("r1 = 0\n*(u32 *)(r10 - 6) = r1\nr0 = 0\nexit")
        assert not result.ok
        assert "misaligned" in result.reason

    def test_stack_write_past_fp(self):
        result = check("r1 = 0\n*(u64 *)(r10 - 4) = r1\nr0 = 0\nexit")
        assert not result.ok
        assert "invalid stack access" in result.reason

    def test_jump_out_of_bounds(self):
        result = check("r0 = 0\ngoto +10\nexit")
        assert not result.ok

    def test_uninitialized_r0_at_exit(self):
        result = check("r1 = 0\nexit")
        assert not result.ok

    def test_returning_pointer(self):
        result = check("r0 = r10\nexit")
        assert not result.ok
        assert "pointer" in result.reason

    def test_leaking_pointer_to_packet(self):
        result = check("""
            r2 = *(u64 *)(r1 + 0)
            r3 = *(u64 *)(r1 + 8)
            r4 = r2
            r4 += 14
            if r4 > r3 goto out
            *(u64 *)(r2 + 0) = r10
        out:
            r0 = 0
            exit
        """)
        assert not result.ok

    def test_infinite_loop_hits_complexity_limit(self):
        result = check("""
            r0 = 0
        loop:
            r0 += 1
            goto loop
        """, kernel=KERNELS["4.15"])
        assert not result.ok

    def test_pointer_multiplication(self):
        result = check("r1 *= 2\nr0 = 0\nexit")
        assert not result.ok

    def test_unbounded_variable_packet_offset(self):
        result = check("""
            r2 = *(u64 *)(r1 + 0)
            r3 = *(u64 *)(r1 + 8)
            r4 = r2
            r4 += 14
            if r4 > r3 goto out
            r5 = *(u64 *)(r10 - 8)
        out:
            r0 = 0
            exit
        """)
        assert not result.ok  # r10-8 uninitialized (distinct failure)

    def test_helper_bad_map_arg(self):
        result = check("""
            r1 = 5
            *(u32 *)(r10 - 4) = 0
            r2 = r10
            r2 += -4
            call 1
            r0 = 0
            exit
        """)
        assert not result.ok


class TestKernelConfigs:
    def test_old_kernel_rejects_alu32(self):
        result = check("w0 = 0\nexit", kernel=KERNELS["4.15"])
        assert not result.ok
        assert "ALU32" in result.reason

    def test_new_kernel_accepts_alu32(self):
        assert check("w0 = 0\nexit", kernel=KERNELS["6.5"]).ok

    def test_size_limit_415(self):
        big = "\n".join(["r0 = 0"] * 5000) + "\nexit"
        result = check(big, kernel=KERNELS["4.15"])
        assert not result.ok
        assert "too large" in result.reason

    def test_size_limit_ok_on_52(self):
        big = "\n".join(["r0 = 0"] * 5000) + "\nexit"
        assert check(big, kernel=KERNELS["5.2"]).ok

    def test_alu32_imprecise_on_old_kernels(self):
        # pre-5.13 kernels lose bounds through ALU32: a packet offset
        # computed with w-registers cannot prove safety
        asm = """
            r2 = *(u64 *)(r1 + 0)
            r3 = *(u64 *)(r1 + 8)
            r4 = r2
            r4 += 64
            if r4 > r3 goto out
            r5 = *(u8 *)(r2 + 0)
            w5 &= 0x1f
            r2 += r5
            r0 = *(u8 *)(r2 + 0)
            exit
        out:
            r0 = 0
            exit
        """
        assert not check(asm, kernel=KERNELS["5.2"]).ok
        assert check(asm, kernel=KERNELS["6.5"]).ok


class TestMetrics:
    def test_npi_exceeds_ni_with_branches(self):
        result = check(GOOD_PACKET_READ)
        program_ni = len(assemble(GOOD_PACKET_READ))
        assert result.npi >= program_ni

    def test_verification_time_model_positive(self):
        result = check(GOOD_PACKET_READ)
        assert result.verification_time_ns > 0

    def test_pruning_counts(self):
        # diamond CFG: the join point gets a stored state and prunes
        asm = """
            r2 = *(u32 *)(r1 + 16)
            r0 = 0
            if r2 == 1 goto a
            r0 = 1
        a:
            r0 += 1
            r0 = 0
            exit
        """
        result = check(asm)
        assert result.ok
        assert result.total_states >= 2

    def test_states_tracked(self):
        result = check(GOOD_PACKET_READ)
        assert result.peak_states >= 1
        assert result.total_states >= 1
