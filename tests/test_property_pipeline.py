"""Property-based cross-layer tests: randomly generated straight-line
mini-C programs must behave identically before and after Merlin, on
every kernel configuration that accepts them."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import compile_baseline, optimize
from repro.frontend import compile_source
from repro.isa import ProgramType
from repro.verifier import verify
from repro.vm import Machine

_OPS = ["+", "-", "*", "&", "|", "^", "<<", ">>"]
_TYPES = ["u8", "u16", "u32", "u64"]


def _gen_program(rng: random.Random, statements: int) -> str:
    """A random straight-line program reading ctx and mixing widths."""
    lines = ["u64 f(u8* ctx) {"]
    variables = []
    for i in range(statements):
        name = f"v{i}"
        ty = rng.choice(_TYPES)
        roll = rng.random()
        if roll < 0.4 or not variables:
            size = {"u8": 1, "u16": 2, "u32": 4, "u64": 8}[ty]
            off = rng.randrange(0, 56)
            lines.append(f"    {ty} {name} = *({ty}*)(ctx + {off});")
        elif roll < 0.8:
            a = rng.choice(variables)
            op = rng.choice(_OPS)
            operand = rng.choice(variables + [str(rng.randrange(1, 63))])
            if op in ("<<", ">>"):
                operand = str(rng.randrange(0, 31))
            lines.append(f"    {ty} {name} = ({ty})({a} {op} {operand});")
        else:
            a = rng.choice(variables)
            const = rng.randrange(0, 1 << 16)
            lines.append(
                f"    {ty} {name} = ({ty})({a} > {const} ? {a} : {const});"
            )
        variables.append(name)
    acc = " ^ ".join(f"(u64){v}" for v in variables[-6:])
    lines.append(f"    return {acc};")
    lines.append("}")
    return "\n".join(lines)


@given(st.integers(0, 10_000), st.integers(3, 14),
       st.binary(min_size=64, max_size=64))
@settings(max_examples=30, deadline=None)
def test_random_programs_equivalent_under_merlin(seed, statements, ctx):
    source = _gen_program(random.Random(seed), statements)
    baseline = compile_baseline(compile_source(source), "f",
                                prog_type=ProgramType.TRACEPOINT,
                                ctx_size=64)
    optimized, report = optimize(compile_source(source), "f",
                                 prog_type=ProgramType.TRACEPOINT,
                                 ctx_size=64)
    assert optimized.ni <= baseline.ni
    r_base = Machine(baseline).run(ctx=ctx).return_value
    r_opt = Machine(optimized).run(ctx=ctx).return_value
    assert r_base == r_opt, source


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_random_programs_verify_after_merlin(seed):
    source = _gen_program(random.Random(seed), 8)
    optimized, _ = optimize(compile_source(source), "f",
                            prog_type=ProgramType.TRACEPOINT, ctx_size=64)
    result = verify(optimized)
    assert result.ok, f"{result.reason}\n{source}"
