"""IR core tests: types, values, instructions, builder, validator."""

import pytest

from repro import ir
from repro.ir import (
    I1,
    I8,
    I16,
    I32,
    I64,
    VOID,
    ArrayType,
    Constant,
    Function,
    IRBuilder,
    IRValidationError,
    IntType,
    Module,
    PointerType,
    instructions as iri,
    int_type,
    make_struct,
    natural_alignment,
    pointer,
    print_function,
    validate_function,
)


class TestTypes:
    def test_sizes(self):
        assert I8.size_bytes == 1
        assert I16.size_bytes == 2
        assert I32.size_bytes == 4
        assert I64.size_bytes == 8
        assert pointer(I8).size_bytes == 8
        assert VOID.size_bytes == 0

    def test_masks(self):
        assert I8.mask == 0xFF
        assert I32.mask == 0xFFFFFFFF

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(24)

    def test_int_type_lookup(self):
        assert int_type(32) is I32

    def test_array_type(self):
        arr = ArrayType(I32, 10)
        assert arr.size_bytes == 40
        assert natural_alignment(arr) == 4

    def test_struct_layout_with_padding(self):
        s = make_struct("demo", [("a", I8), ("b", I64), ("c", I16)])
        assert s.field("a").offset == 0
        assert s.field("b").offset == 8  # padded for alignment
        assert s.field("c").offset == 16
        assert s.size_bytes == 24

    def test_packed_struct_layout(self):
        s = make_struct("packed", [("a", I8), ("b", I64)], packed=True)
        assert s.field("b").offset == 1

    def test_struct_unknown_field(self):
        s = make_struct("demo", [("a", I8)])
        with pytest.raises(KeyError):
            s.field("missing")

    def test_natural_alignment(self):
        assert natural_alignment(I64) == 8
        assert natural_alignment(pointer(I8)) == 8
        assert natural_alignment(I16) == 2


class TestConstants:
    def test_wrapping(self):
        assert Constant(I8, 256).value == 0
        assert Constant(I8, -1).value == 255

    def test_signed_view(self):
        assert Constant(I32, 0xFFFFFFFF).signed == -1
        assert Constant(I32, 5).signed == 5

    def test_equality_and_hash(self):
        assert Constant(I32, 5) == Constant(I32, 5)
        assert Constant(I32, 5) != Constant(I64, 5)
        assert hash(Constant(I32, 5)) == hash(Constant(I32, 5))


def _simple_function():
    func = Function("f", I64, [pointer(I8)], ["ctx"])
    block = func.add_block("entry")
    builder = IRBuilder(block)
    return func, builder


class TestBuilderAndUses:
    def test_use_lists_track_operands(self):
        func, b = _simple_function()
        x = b.add(b.i64(1), b.i64(2))
        y = b.add(x, b.i64(3))
        b.ret(y)
        assert y in x.uses

    def test_rauw(self):
        func, b = _simple_function()
        x = b.add(b.i64(1), b.i64(2))
        y = b.add(x, x)
        replacement = b.i64(9)
        x.replace_all_uses_with(replacement)
        assert y.operands == [replacement, replacement]
        assert x.uses == []

    def test_erase_detaches(self):
        func, b = _simple_function()
        x = b.add(b.i64(1), b.i64(2))
        y = b.mul(x, b.i64(2))
        b.ret(y)
        y.replace_all_uses_with(x)
        y.erase()
        assert y not in x.uses
        assert y.parent is None

    def test_terminated_block_rejects_append(self):
        func, b = _simple_function()
        b.ret(b.i64(0))
        with pytest.raises(ValueError):
            b.add(b.i64(1), b.i64(1))

    def test_binop_type_mismatch_rejected(self):
        func, b = _simple_function()
        with pytest.raises(TypeError):
            b.add(b.i64(1), b.i32(1))

    def test_store_type_mismatch_rejected(self):
        func, b = _simple_function()
        slot = b.alloca(I64)
        with pytest.raises(TypeError):
            b.store(b.i32(1), slot)

    def test_load_requires_pointer(self):
        func, b = _simple_function()
        with pytest.raises(TypeError):
            b.load(b.i64(0))

    def test_atomicrmw_type_checks(self):
        func, b = _simple_function()
        slot = b.alloca(I64)
        rmw = b.atomic_rmw("add", slot, b.i64(1))
        assert rmw.type == I64
        with pytest.raises(TypeError):
            b.atomic_rmw("add", slot, b.i32(1))

    def test_phi_incoming(self):
        func = Function("g", I64)
        a = func.add_block("a")
        c = func.add_block("c")
        b_ = func.add_block("b")
        builder = IRBuilder(a)
        va = builder.i64(1)
        builder.br(c)
        builder.position_at_end(b_)
        builder.br(c)
        builder.position_at_end(c)
        phi = builder.phi(I64)
        phi.add_incoming(va, a)
        phi.add_incoming(builder.i64(2), b_)
        builder.ret(phi)
        assert phi.incoming_for(a) is va

    def test_block_name_uniquified(self):
        func = Function("g", I64)
        b1 = func.add_block("loop")
        b2 = func.add_block("loop")
        assert b1.name != b2.name

    def test_predecessors(self):
        func, b = _simple_function()
        exit_blk = func.add_block("exit")
        b.br(exit_blk)
        preds = func.predecessors()
        assert preds[exit_blk] == [func.entry]


class TestValidator:
    def test_valid_function_passes(self):
        func, b = _simple_function()
        p = b.gep_const(func.args[0], 4, I32)
        v = b.load(p, align=1)
        z = b.zext(v, I64)
        b.ret(z)
        validate_function(func)

    def test_missing_terminator_rejected(self):
        func, b = _simple_function()
        b.add(b.i64(1), b.i64(1))
        with pytest.raises(IRValidationError, match="no terminator"):
            validate_function(func)

    def test_empty_function_rejected(self):
        func = Function("empty", I64)
        with pytest.raises(IRValidationError):
            validate_function(func)

    def test_ret_type_mismatch_rejected(self):
        func, b = _simple_function()
        b.ret(b.i32(0))
        with pytest.raises(IRValidationError, match="ret type"):
            validate_function(func)

    def test_void_ret_with_value_rejected(self):
        func = Function("v", VOID)
        block = func.add_block("entry")
        builder = IRBuilder(block)
        builder.ret(Constant(I64, 1))
        with pytest.raises(IRValidationError):
            validate_function(func)

    def test_use_before_def_rejected(self):
        func, b = _simple_function()
        x = b.add(b.i64(1), b.i64(1))
        y = b.add(x, b.i64(2))
        b.ret(y)
        # move y's definition before x's
        block = func.entry
        block.instructions.remove(y)
        block.instructions.insert(0, y)
        with pytest.raises(IRValidationError):
            validate_function(func)

    def test_phi_with_wrong_preds_rejected(self):
        func = Function("g", I64)
        a = func.add_block("a")
        c = func.add_block("c")
        builder = IRBuilder(a)
        builder.br(c)
        builder.position_at_end(c)
        phi = builder.phi(I64)
        phi.add_incoming(Constant(I64, 1), c)  # wrong: pred is 'a'
        builder.ret(phi)
        with pytest.raises(IRValidationError, match="phi"):
            validate_function(func)


class TestPrinter:
    def test_renders_key_syntax(self):
        func, b = _simple_function()
        p = b.gep_const(func.args[0], 0x24, I16)
        v = b.load(p, align=1)
        slot = b.alloca(I64, align=8)
        b.store(b.i64(1), slot, align=8)
        rmw = b.atomic_rmw("add", slot, b.i64(2))
        z = b.zext(v, I64)
        b.ret(z)
        text = print_function(func)
        assert "load i16, i16*" in text
        assert "align 1" in text
        assert "atomicrmw add" in text
        assert "monotonic, align 8" in text
        assert "zext i16" in text

    def test_module_printing(self):
        module = Module("m")
        func, b = _simple_function()
        b.ret(b.i64(0))
        module.add_function(func)
        from repro.ir import print_module

        assert "define i64 @f" in print_module(module)

    def test_duplicate_function_rejected(self):
        module = Module("m")
        func, b = _simple_function()
        b.ret(b.i64(0))
        module.add_function(func)
        with pytest.raises(ValueError):
            module.add_function(func)
