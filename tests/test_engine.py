"""Engine tests: cross-engine equality, superblocks, decode cache.

Every non-reference engine (the fast pre-decoded dispatcher and the
whole-program jit) must be observationally *bit-identical* to the
reference interpreter: same return value, same fault (type and
message), same perf counters, same memory/map effects.  Every test
here runs all engines and compares everything.
"""

import dataclasses

import pytest

from repro.fuzz import LAYERS, generate
from repro.fuzz.differential import check_engines, observe_baseline
from repro.isa import BpfProgram, Instruction, assemble, opcodes as op
from repro.vm import Machine, Memory, MemoryFault
from repro.vm.engine import (
    clear_decode_cache,
    decode_cache_stats,
    decode_program,
)
from repro.vm.interpreter import ENGINES
from repro.vm.memory import PACKET_BASE


def observe(program: BpfProgram, ctx: bytes = b"", packet=None,
            engine: str = "reference", max_insns: int = 200_000):
    """Run once and capture everything observable about the run."""
    machine = Machine(program, engine=engine, max_insns=max_insns)
    try:
        result = machine.run(ctx=ctx, packet=packet)
    except Exception as exc:  # VmFault, HelperError, MapError...
        outcome = ("fault", f"{type(exc).__name__}: {exc}")
    else:
        outcome = ("ok", result.return_value)
    memory = {name: bytes(region.data)
              for name, region in machine.memory.regions.items()}
    return outcome, dataclasses.astuple(machine.counters), memory


def assert_engines_agree(program: BpfProgram, ctx: bytes = b"", packet=None,
                         max_insns: int = 200_000):
    reference = observe(program, ctx, packet, "reference", max_insns)
    for engine in ENGINES:
        if engine == "reference":
            continue
        seen = observe(program, ctx, packet, engine, max_insns)
        assert seen == reference, f"{engine} diverged from reference"
    return reference


def agree(asm: str, ctx: bytes = b"", packet=None, maps=None,
          ctx_size: int = 64, max_insns: int = 200_000):
    program = BpfProgram("t", assemble(asm), maps=maps or {},
                         ctx_size=ctx_size)
    return assert_engines_agree(program, ctx, packet, max_insns)


class TestCrossEngineAlu:
    @pytest.mark.parametrize("asm", [
        "r0 = -1\nr0 += 2\nexit",
        "r0 = 7\nr0 *= -6\nexit",
        "r0 = -1\nr1 = 2\nr0 /= r1\nexit",
        "r0 = 10\nr1 = 0\nr0 /= r1\nexit",
        "r0 = 10\nr1 = 0\nr0 %= r1\nexit",
        "r0 = 10\nr1 = 3\nr0 %= r1\nexit",
        "r0 = 1\nr1 = 65\nr0 <<= r1\nexit",
        "r0 = -8\nr0 s>>= 1\nexit",
        "r0 = -8\nr1 = 70\nr0 s>>= r1\nexit",
        "r0 = 5\nr0 = -r0\nexit",
        "r0 = 0x1234\nr0 = be16 r0\nexit",
        "r0 = 0x11223344\nr0 = be32 r0\nexit",
        "r0 = 0x1122334455667788 ll\nr0 = be64 r0\nexit",
        "r0 = 0x1234\nr0 = le16 r0\nexit",
        "w0 = -1\nw0 += 2\nexit",
        "w0 = 1\nw1 = 33\nw0 <<= w1\nexit",
        "w0 = -8\nw0 s>>= 1\nexit",
        "r0 = 0x1fffffffff ll\nw0 = w0\nexit",
    ])
    def test_alu_identical(self, asm):
        outcome, _, _ = agree(asm)
        assert outcome[0] == "ok"


class TestCrossEngineJumps:
    @pytest.mark.parametrize("asm", [
        "r0 = 0\nr1 = 4\nif r1 > 3 goto yes\nexit\nyes:\nr0 = 1\nexit",
        "r0 = 0\nr1 = -1\nif r1 s< 0 goto neg\nexit\nneg:\nr0 = 1\nexit",
        "r0 = 0\nr1 = 2\nif r1 & 0b0010 goto yes\nexit\nyes:\nr0 = 1\nexit",
        "r0 = 0\nw1 = 1\nif w1 == 1 goto yes\nexit\nyes:\nr0 = 1\nexit",
        # loop: backward branch taken repeatedly
        ("r0 = 0\nr1 = 10\nloop:\nr0 += r1\nr1 -= 1\n"
         "if r1 > 0 goto loop\nexit"),
    ])
    def test_jumps_identical(self, asm):
        outcome, _, _ = agree(asm)
        assert outcome[0] == "ok"

    def test_oob_jump_faults_identically(self):
        outcome, _, _ = agree("r0 = 0\ngoto +5\nexit")
        assert outcome[0] == "fault"
        assert "out of program bounds" in outcome[1]

    def test_jump_into_mid_ld_imm64_faults_identically(self):
        # goto +1 from slot 0 lands on the second slot of the ld_imm64
        outcome, _, _ = agree("goto +1\nr0 = 0x11223344 ll\nexit")
        assert outcome[0] == "fault"
        assert "middle of ld_imm64" in outcome[1]

    def test_budget_fault_identical(self):
        outcome, counters, _ = agree("start:\ngoto start", max_insns=100)
        assert outcome == (
            "fault", "VmFault: instruction budget exhausted (infinite loop?)")
        assert counters[0] == 100  # instructions executed before the trip


class TestCrossEngineMemory:
    @pytest.mark.parametrize("asm", [
        "r1 = 0x11223344\n*(u32 *)(r10 - 4) = r1\nr0 = *(u32 *)(r10 - 4)\nexit",
        "*(u64 *)(r10 - 8) = 99\nr0 = *(u64 *)(r10 - 8)\nexit",
        "*(u32 *)(r10 - 4) = 0x11223344\nr0 = *(u8 *)(r10 - 4)\nexit",
        # uninitialized stack read sees the garbage fill pattern
        "r0 = *(u8 *)(r10 - 100)\nexit",
    ])
    def test_memory_identical(self, asm):
        outcome, _, _ = agree(asm)
        assert outcome[0] == "ok"

    def test_ctx_load_identical(self):
        ctx = bytes(range(16))
        agree("r0 = *(u32 *)(r1 + 4)\nexit", ctx=ctx)

    def test_packet_load_identical(self):
        agree("r2 = *(u64 *)(r1 + 0)\nr0 = *(u8 *)(r2 + 2)\nexit",
              packet=b"\x01\x02\x03\x04")

    def test_load_fault_identical(self):
        outcome, _, _ = agree("r1 = 0x999 ll\nr0 = *(u64 *)(r1 + 0)\nexit")
        assert outcome[0] == "fault"
        assert "unmapped access" in outcome[1]

    def test_store_fault_identical(self):
        outcome, _, _ = agree("r1 = 7\n*(u64 *)(r10 - 520) = r1\nexit")
        assert outcome[0] == "fault"

    def test_unsupported_ld_mode_identical(self):
        insns = [Instruction(op.BPF_LD | op.BPF_ABS | op.BPF_W, imm=0),
                 Instruction(op.BPF_JMP | op.BPF_EXIT)]
        outcome, _, _ = assert_engines_agree(BpfProgram("t", insns))
        assert outcome[0] == "fault"
        assert "unsupported LD mode" in outcome[1]


class TestCrossEngineAtomics:
    @pytest.mark.parametrize("asm", [
        ("*(u64 *)(r10 - 8) = 10\nr1 = 5\nlock *(u64 *)(r10 - 8) += r1\n"
         "r0 = *(u64 *)(r10 - 8)\nexit"),
        ("*(u64 *)(r10 - 8) = 10\nr1 = 5\n"
         "r1 = lock *(u64 *)(r10 - 8) += r1\nr0 = r1\nexit"),
        ("*(u64 *)(r10 - 8) = 12\nr1 = 10\nr2 = 1\n"
         "lock *(u64 *)(r10 - 8) &= r1\nlock *(u64 *)(r10 - 8) |= r2\n"
         "r0 = *(u64 *)(r10 - 8)\nexit"),
    ])
    def test_atomics_identical(self, asm):
        outcome, counters, _ = agree(asm)
        assert outcome[0] == "ok"
        assert counters[8] >= 1  # atomics counter

    def test_unsupported_cmpxchg_faults_identically(self):
        atomic = Instruction(op.BPF_STX | op.BPF_DW | op.BPF_ATOMIC,
                             dst=10, src=2, off=-8, imm=op.BPF_CMPXCHG)
        insns = (assemble("r1 = 10\n*(u64 *)(r10 - 8) = r1\nr2 = 5")
                 + [atomic] + assemble("r0 = 0\nexit"))
        outcome, _, _ = assert_engines_agree(BpfProgram("t", insns))
        assert outcome[0] == "fault"
        assert "unsupported atomic" in outcome[1]


class TestCrossEngineHelpers:
    def test_ktime_identical(self):
        # ktime derives from the cycle counter, so agreement here proves
        # the fast engine charges helper costs at the same point
        agree("call 5\nr6 = r0\ncall 5\nr0 -= r6\nexit")

    def test_prandom_identical(self):
        agree("call 7\nexit")

    def test_unknown_helper_faults_identically(self):
        outcome, _, _ = agree("call 9999\nexit")
        assert outcome[0] == "fault"


class TestSuperblocks:
    def test_straight_line_run_forms_block(self):
        program = BpfProgram("t", assemble(
            "r0 = 1\nr0 += 2\nr0 *= 3\nr1 = r0\nexit"))
        decoded = decode_program(program)
        assert decoded.blocks, "expected at least one superblock"
        block = decoded.blocks[0]
        assert block.count >= 2

    def test_load_tainted_base_splits_block(self):
        # the loaded pointer (r2) must not serve as a base inside the
        # same block: the second memop lands in a separate block (or
        # none), never fused after the load that defines its base
        program = BpfProgram("t", assemble(
            "r2 = *(u64 *)(r1 + 0)\nr0 = *(u8 *)(r2 + 2)\nexit"),
            ctx_size=64)
        decoded = decode_program(program)
        for block in decoded.blocks:
            slots = range(block.start, block.start + block.count)
            assert not (0 in slots and 1 in slots)

    def test_jump_into_middle_of_block(self):
        # slots 2..4 form a straight-line run; the goto enters at slot 3
        asm = ("r0 = 5\n"
               "goto mid\n"
               "r0 = 99\n"
               "mid:\n"
               "r0 += 1\n"
               "r0 += 2\n"
               "exit")
        outcome, _, _ = agree(asm)
        assert outcome == ("ok", 8)

    def test_fault_mid_block_replays_identically(self):
        # the first store commits, the second faults: the fast engine
        # must leave the stack byte-identical to the reference (replay
        # performs the prefix for real) and fault with the same message
        asm = ("r1 = r10\n"
               "r2 = 1\n"
               "*(u64 *)(r1 - 8) = r2\n"
               "*(u64 *)(r1 - 600) = r2\n"
               "exit")
        outcome, _, memory = agree(asm)
        assert outcome[0] == "fault"
        assert memory["stack"][-8:] == (1).to_bytes(8, "little")

    def test_budget_exhausted_mid_block_identical(self):
        # budget expires inside a fused run: the fast engine must replay
        # per-instruction so the fault lands on the exact instruction
        asm = "r0 = 1\nr0 += 1\nr0 += 2\nr0 += 3\nr0 += 4\nexit"
        program = BpfProgram("t", assemble(asm))
        assert decode_program(program).blocks
        for budget in range(1, 6):
            outcome, counters, _ = assert_engines_agree(
                program, max_insns=budget)
            assert outcome[0] == "fault"
            assert counters[0] == budget

    def test_store_load_aliasing_in_block(self):
        # store then load of the same address inside one fused run must
        # observe the stored value (program-order commit)
        asm = ("r1 = 0x11223344\n"
               "*(u32 *)(r10 - 4) = r1\n"
               "r0 = *(u32 *)(r10 - 4)\n"
               "exit")
        outcome, _, _ = agree(asm)
        assert outcome == ("ok", 0x11223344)


class TestDecodeCache:
    def test_hit_and_miss_accounting(self):
        clear_decode_cache()
        program = BpfProgram("t", assemble("r0 = 1\nr0 += 2\nexit"))
        Machine(program, engine="fast")
        stats = decode_cache_stats()
        assert (stats.hits, stats.misses) == (0, 1)
        Machine(program, engine="fast")
        stats = decode_cache_stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_cache_keys_on_content(self):
        clear_decode_cache()
        a = BpfProgram("a", assemble("r0 = 1\nr0 += 2\nexit"))
        b = BpfProgram("b", assemble("r0 = 1\nr0 += 2\nexit"))
        assert decode_program(a) is decode_program(b)
        different = BpfProgram("c", assemble("r0 = 1\nr0 += 3\nexit"))
        assert decode_program(different) is not decode_program(a)

    def test_clear_resets(self):
        program = BpfProgram("t", assemble("r0 = 0\nr0 += 0\nexit"))
        decode_program(program)
        clear_decode_cache()
        stats = decode_cache_stats()
        assert (stats.hits, stats.misses) == (0, 0)


class TestMemoryIndex:
    def test_find_after_delete(self):
        memory = Memory()
        region = memory.add_region("a", 0x1000_0000, 64)
        assert memory.find(0x1000_0000, 8) is region
        del memory.regions["a"]
        with pytest.raises(MemoryFault):
            memory.find(0x1000_0000, 8)

    def test_version_bumps_on_mutation(self):
        memory = Memory()
        before = memory.version
        memory.add_region("a", 0x1000_0000, 64)
        assert memory.version > before
        before = memory.version
        del memory.regions["a"]
        assert memory.version > before

    def test_window_straddling_region(self):
        memory = Memory()
        region = memory.add_region("edge", 0x1FFF_FFF8, 16)
        assert memory.find(0x1FFF_FFF8, 8) is region
        assert memory.find(0x2000_0000, 8) is region


class TestSetPacketReuse:
    def _machine(self):
        program = BpfProgram("t", assemble("r0 = 0\nexit"),
                             prog_type=__import__(
                                 "repro.isa", fromlist=["ProgramType"]
                             ).ProgramType.XDP)
        return Machine(program)

    def test_region_object_reused_across_runs(self):
        machine = self._machine()
        machine.set_packet(b"abc")
        region = machine.memory.regions["packet"]
        machine.set_packet(b"a much longer payload")
        assert machine.memory.regions["packet"] is region
        assert len(region.data) == Machine.PACKET_HEADROOM + len(
            b"a much longer payload")
        machine.set_packet(b"x")
        assert len(region.data) == Machine.PACKET_HEADROOM + 1

    def test_headroom_rezeroed(self):
        machine = self._machine()
        machine.set_packet(b"abc")
        region = machine.memory.regions["packet"]
        region.data[0] = 0x7F  # dirty the headroom like adjust_head would
        machine.set_packet(b"abc")
        assert region.data[0] == 0

    def test_data_end_is_exact(self):
        machine = self._machine()
        addr = machine.set_packet(b"abcd")
        assert addr == PACKET_BASE + Machine.PACKET_HEADROOM
        region = machine.memory.regions["packet"]
        assert region.end == addr + 4


class TestCounterMirror:
    def test_counters_synced_after_run(self):
        program = BpfProgram("t", assemble(
            "*(u64 *)(r10 - 8) = 1\nr0 = *(u64 *)(r10 - 8)\nexit"))
        for engine in ENGINES:
            machine = Machine(program, engine=engine)
            machine.run()
            assert (machine.counters.cache_references
                    == machine.cache.stats.references)
            assert (machine.counters.cache_misses
                    == machine.cache.stats.misses)
            assert (machine.counters.branch_misses
                    == machine.branch.stats.mispredictions)


@pytest.mark.parametrize("layer", LAYERS)
@pytest.mark.parametrize("seed", [11, 137, 4096])
def test_fuzz_corpus_engines_agree(layer, seed):
    """Property test: generated programs at every fuzz layer behave
    bit-identically on both engines (return value, faults, counters,
    and map/memory state via the oracle's output summaries)."""
    case = generate(layer, seed)
    try:
        baseline = observe_baseline(case)
    except Exception:
        pytest.skip("generated program does not compile on this toolchain")
    divergence = check_engines(case, baseline)
    assert divergence is None, divergence
