"""Tests for the K2 baseline and its equivalence oracle."""

import pytest

from repro.baselines import (
    K2Config,
    K2Optimizer,
    K2_SUPPORTED_HELPERS,
    equivalent,
    generate_tests,
    k2_optimize,
)
from repro.isa import BpfProgram, ProgramType, assemble
from repro.verifier import verify
from repro.workloads.xdp import BY_NAME, compile_workload


@pytest.fixture(scope="module")
def xdp1():
    return compile_workload(BY_NAME["xdp1"])


class TestSupportGating:
    def test_xdp_supported(self, xdp1):
        ok, reason = K2Optimizer().check_supported(xdp1)
        assert ok, reason

    def test_tracepoint_rejected(self):
        program = BpfProgram("tp", assemble("r0 = 0\nexit"),
                             prog_type=ProgramType.TRACEPOINT)
        result = k2_optimize(program)
        assert not result.supported
        assert "XDP" in result.reason

    def test_unsupported_helper_rejected(self):
        program = BpfProgram("t", assemble("call 25\nexit"))  # perf_event
        result = k2_optimize(program)
        assert not result.supported
        assert "perf_event_output" in result.reason

    def test_unsupported_returns_original(self):
        program = BpfProgram("tp", assemble("r0 = 0\nexit"),
                             prog_type=ProgramType.TRACEPOINT)
        result = k2_optimize(program)
        assert result.program is program
        assert result.ni_reduction == 0.0


class TestEquivalenceOracle:
    def test_program_equals_itself(self, xdp1):
        tests = generate_tests(xdp1, count=6)
        assert equivalent(xdp1, xdp1.copy(), tests)

    def test_detects_changed_return(self, xdp1):
        mutated = xdp1.copy()
        # change the final constant: xdp1 returns DROP(1); flip to PASS(2)
        for i, insn in enumerate(mutated.insns):
            if insn.is_alu and insn.uses_imm and insn.imm == 1 and \
                    insn.dst == 0:
                mutated.insns[i] = insn.with_(imm=2)
        tests = generate_tests(xdp1, count=6)
        assert not equivalent(xdp1, mutated, tests)

    def test_detects_dropped_map_update(self, xdp1):
        # xdp1 increments its counter via load/add/store: drop the store
        mutated = xdp1.copy()
        stores = [i for i, insn in enumerate(mutated.insns)
                  if insn.is_store and not insn.dst == 10]
        assert stores, "expected a map-value store in xdp1"
        del mutated.insns[stores[-1]]
        tests = generate_tests(xdp1, count=6)
        assert not equivalent(xdp1, mutated, tests)

    def test_detects_packet_write_removal(self):
        program = compile_workload(BY_NAME["xdp2"])  # swaps MACs
        mutated = program.copy()
        stores = [i for i, insn in enumerate(mutated.insns)
                  if insn.is_store and not insn.is_atomic]
        del mutated.insns[stores[-1]]
        tests = generate_tests(program, count=6)
        assert not equivalent(program, mutated, tests)

    def test_faulting_candidate_rejected(self, xdp1):
        broken = xdp1.copy()
        broken.insns = assemble("r0 = *(u64 *)(r1 + 4096)\nexit")
        tests = generate_tests(xdp1, count=4)
        assert not equivalent(xdp1, broken, tests)


class TestSearch:
    def test_shrinks_program(self, xdp1):
        result = K2Optimizer(K2Config(iterations=800)).optimize(xdp1)
        assert result.supported
        assert result.ni_after <= result.ni_before
        assert result.iterations > 0

    def test_output_verifies(self, xdp1):
        result = K2Optimizer(K2Config(iterations=600)).optimize(xdp1)
        assert verify(result.program).ok

    def test_output_equivalent(self, xdp1):
        result = K2Optimizer(K2Config(iterations=600)).optimize(xdp1)
        tests = generate_tests(xdp1, count=8, seed=12345)  # held-out seed
        assert equivalent(xdp1, result.program, tests)

    def test_deterministic_for_seed(self, xdp1):
        a = K2Optimizer(K2Config(iterations=300, seed=3)).optimize(xdp1)
        b = K2Optimizer(K2Config(iterations=300, seed=3)).optimize(xdp1)
        assert a.ni_after == b.ni_after

    def test_budget_shrinks_with_size(self):
        optimizer = K2Optimizer(K2Config(iterations=4000))
        small = optimizer._iteration_budget(50)
        large = optimizer._iteration_budget(2000)
        assert large < small

    def test_timing_recorded(self, xdp1):
        result = K2Optimizer(K2Config(iterations=200)).optimize(xdp1)
        assert result.seconds > 0


class TestPinnedSearchOutcomes:
    """Bit-identity lock on the K2 search after the proposal/cost
    machinery moved into :mod:`repro.baselines.search`.

    The superoptimizer tier reuses that machinery, so these pins hold
    the *baseline* numbers fixed: every value below was captured from
    the pre-refactor implementation.  A change here means the K2
    baseline's RNG stream or cost model drifted — which silently
    invalidates every published K2 comparison — so fix the drift, do
    not re-pin.
    """

    DIGEST = ("8348d6c6af1249ef5d99ceb0b68fa58f"
              "055ce6ccf5113a3b776959e2779e1734")

    @staticmethod
    def _digest(program):
        import hashlib

        return hashlib.sha256(
            b"".join(insn.encode() for insn in program.insns)).hexdigest()

    def test_seed3_pinned(self, xdp1):
        result = K2Optimizer(K2Config(iterations=300, seed=3)).optimize(xdp1)
        assert result.ni_before == 32
        assert result.ni_after == 29
        assert result.iterations == 195
        assert result.accepted == 9
        assert self._digest(result.program) == self.DIGEST

    def test_seed11_pinned(self, xdp1):
        result = K2Optimizer(K2Config(iterations=200, seed=11)).optimize(xdp1)
        assert result.ni_before == 32
        assert result.ni_after == 29
        assert result.iterations == 150
        assert result.accepted == 4
        assert self._digest(result.program) == self.DIGEST
