"""Backend tests: lowering patterns, register allocation, emission."""

import pytest

from repro import ir
from repro.codegen import (
    EmissionError,
    SelectionError,
    StackOverflowError,
    compile_function,
)
from repro.isa import disassemble
from repro.isa import opcodes as op
from repro.vm import Machine


def build_function(body):
    """body(builder, func) constructs the IR; returns the function."""
    func = ir.Function("f", ir.I64, [ir.pointer(ir.I8)], ["ctx"])
    block = func.add_block("entry")
    builder = ir.IRBuilder(block)
    body(builder, func)
    ir.validate_function(func)
    return func


def compile_and_run(body, ctx=b"\x00" * 64):
    func = build_function(body)
    program = compile_function(func, ctx_size=64)
    return program, Machine(program).run(ctx=ctx).return_value


class TestLoweringPatterns:
    def test_unaligned_u16_load_decomposes(self):
        """align-1 i16 load becomes two byte loads + shl/or (Fig. 6)."""

        def body(b, f):
            p = b.gep_const(f.args[0], 4, ir.I16)
            v = b.load(p, align=1)
            b.ret(b.zext(v, ir.I64))

        program, _ = compile_and_run(body)
        text = disassemble(program.insns)
        assert text.count("*(u8 *)") == 2
        assert "<<= 8" in text
        assert "*(u16 *)" not in text

    def test_aligned_u16_load_is_single(self):
        def body(b, f):
            p = b.gep_const(f.args[0], 4, ir.I16)
            v = b.load(p, align=2)
            b.ret(b.zext(v, ir.I64))

        program, _ = compile_and_run(body)
        assert "*(u16 *)" in disassemble(program.insns)

    def test_unaligned_u64_load_value_correct(self):
        def body(b, f):
            p = b.gep_const(f.args[0], 3, ir.I64)
            b.ret(b.load(p, align=1))

        ctx = bytes(range(64))
        _, value = compile_and_run(body, ctx=ctx)
        import struct

        assert value == struct.unpack_from("<Q", bytes(range(64)), 3)[0]

    def test_align2_u64_load_uses_u16_units(self):
        def body(b, f):
            p = b.gep_const(f.args[0], 2, ir.I64)
            b.ret(b.load(p, align=2))

        program, _ = compile_and_run(body)
        assert disassemble(program.insns).count("*(u16 *)") == 4

    def test_zext_of_dirty_i32_emits_shift_pair(self):
        """The shl 32 / shr 32 idiom (Fig. 8 origin)."""

        def body(b, f):
            p = b.gep_const(f.args[0], 0, ir.I32)
            v = b.load(p, align=4)
            dirty = b.add(v, ir.Constant(ir.I32, 1))
            b.ret(b.zext(dirty, ir.I64))

        program, _ = compile_and_run(body)
        text = disassemble(program.insns)
        assert "<<= 32" in text and ">>= 32" in text

    def test_zext_of_clean_value_is_free(self):
        def body(b, f):
            p = b.gep_const(f.args[0], 0, ir.I32)
            v = b.load(p, align=4)  # loads zero-extend: clean
            b.ret(b.zext(v, ir.I64))

        program, _ = compile_and_run(body)
        assert "<<= 32" not in disassemble(program.insns)

    def test_lshr_dirty_i32_emits_mask_pattern(self):
        """ld_imm64 mask; and; shr (Fig. 9)."""

        def body(b, f):
            p = b.gep_const(f.args[0], 0, ir.I32)
            v = b.load(p, align=4)
            dirty = b.add(v, ir.Constant(ir.I32, 1))
            sh = b.lshr(dirty, ir.Constant(ir.I32, 28))
            b.ret(b.zext(sh, ir.I64))

        program, _ = compile_and_run(body)
        text = disassemble(program.insns)
        assert "0xf0000000 ll" in text
        assert ">>= 28" in text

    def test_lshr_semantics(self):
        def body(b, f):
            p = b.gep_const(f.args[0], 0, ir.I32)
            v = b.load(p, align=4)
            dirty = b.add(v, ir.Constant(ir.I32, 0x10))
            sh = b.lshr(dirty, ir.Constant(ir.I32, 28))
            b.ret(b.zext(sh, ir.I64))

        ctx = (0xE0000000).to_bytes(4, "little") + bytes(60)
        _, value = compile_and_run(body, ctx=ctx)
        assert value == ((0xE0000000 + 0x10) & 0xFFFFFFFF) >> 28

    def test_store_constant_materializes_register(self):
        """Constants are moved into a register before storing (Fig. 4)."""

        def body(b, f):
            slot = b.alloca(ir.I64, align=8)
            b.store(b.i64(1), slot, align=8)
            b.ret(b.load(slot, align=8))

        func = build_function(body)
        program = compile_function(func, ctx_size=64, cleanup=False)
        text = disassemble(program.insns)
        assert "= 1" in text  # mov rX, 1
        assert not any(i.is_store_imm for i in program.insns)

    def test_atomicrmw_lowered_to_xadd(self):
        def body(b, f):
            slot = b.alloca(ir.I64, align=8)
            b.store(b.i64(5), slot, align=8)
            b.atomic_rmw("add", slot, b.i64(3))
            b.ret(b.load(slot, align=8))

        program, value = compile_and_run(body)
        assert value == 8
        assert any(i.is_atomic for i in program.insns)

    def test_atomicrmw_fetch_when_result_used(self):
        def body(b, f):
            slot = b.alloca(ir.I64, align=8)
            b.store(b.i64(5), slot, align=8)
            old = b.atomic_rmw("add", slot, b.i64(3))
            b.ret(old)

        program, value = compile_and_run(body)
        assert value == 5
        fetches = [i for i in program.insns
                   if i.is_atomic and (i.imm & op.BPF_FETCH)]
        assert fetches

    def test_signed_division_rejected(self):
        def body(b, f):
            v = b.binop("sdiv", b.i64(4), b.i64(2))
            b.ret(v)

        func = ir.Function("f", ir.I64)
        block = func.add_block("entry")
        builder = ir.IRBuilder(block)
        with pytest.raises(SelectionError):
            body(builder, func)
            compile_function(func)

    def test_gep_folded_into_load_offset(self):
        def body(b, f):
            p = b.gep_const(f.args[0], 40, ir.I64)
            b.ret(b.load(p, align=8))

        program, _ = compile_and_run(body)
        loads = [i for i in program.insns if i.is_load and i.size_bytes == 8]
        assert any(i.off == 40 for i in loads)

    def test_select_semantics(self):
        def body(b, f):
            p = b.gep_const(f.args[0], 0, ir.I64)
            v = b.load(p, align=8)
            cond = b.icmp("ugt", v, b.i64(10))
            result = b.select(cond, b.i64(111), b.i64(222))
            b.ret(result)

        ctx_hi = (50).to_bytes(8, "little") + bytes(56)
        ctx_lo = (5).to_bytes(8, "little") + bytes(56)
        _, hi = compile_and_run(body, ctx=ctx_hi)
        _, lo = compile_and_run(body, ctx=ctx_lo)
        assert (hi, lo) == (111, 222)

    def test_icmp_materialized_when_multiply_used(self):
        def body(b, f):
            p = b.gep_const(f.args[0], 0, ir.I64)
            v = b.load(p, align=8)
            cond = b.icmp("eq", v, b.i64(7))
            wide = b.zext(cond, ir.I64)
            doubled = b.add(wide, wide)
            b.ret(doubled)

        ctx = (7).to_bytes(8, "little") + bytes(56)
        _, value = compile_and_run(body, ctx=ctx)
        assert value == 2


class TestRegisterAllocation:
    def test_high_pressure_spills_correctly(self):
        """Sum of 14 live values forces spilling; result must be exact."""

        def body(b, f):
            values = []
            for i in range(14):
                p = b.gep_const(f.args[0], i * 4, ir.I32)
                values.append(b.zext(b.load(p, align=4), ir.I64))
            total = values[0]
            for v in values[1:]:
                total = b.add(total, v)
            b.ret(total)

        import struct

        ctx = b"".join(struct.pack("<I", i * 3 + 1) for i in range(16))
        _, value = compile_and_run(body, ctx=ctx)
        assert value == sum(i * 3 + 1 for i in range(14))

    def test_values_live_across_call_survive(self):
        def body(b, f):
            p = b.gep_const(f.args[0], 0, ir.I64)
            before = b.load(p, align=8)
            b.call("ktime_get_ns", [], ir.I64)
            b.call("get_smp_processor_id", [], ir.I32)
            b.ret(before)

        ctx = (987654).to_bytes(8, "little") + bytes(56)
        _, value = compile_and_run(body, ctx=ctx)
        assert value == 987654

    def test_call_args_in_order(self):
        def body(b, f):
            slot = b.alloca(ir.ArrayType(ir.I8, 16), align=8)
            buf = b.bitcast(slot, ir.pointer(ir.I8))
            b.call("probe_read", [buf, b.i64(8), f.args[0]], ir.I64)
            wide = b.bitcast(slot, ir.pointer(ir.I64))
            b.ret(b.load(wide, align=8))

        ctx = (0x1122334455667788).to_bytes(8, "little") + bytes(56)
        _, value = compile_and_run(body, ctx=ctx)
        assert value == 0x1122334455667788

    def test_stack_overflow_detected(self):
        def body(b, f):
            for _ in range(70):
                b.alloca(ir.I64, align=8)
            b.ret(b.i64(0))

        func = build_function(body)
        with pytest.raises(StackOverflowError):
            compile_function(func)

    def test_no_virtual_registers_survive(self):
        from repro.workloads.xdp import ALL_XDP, compile_workload

        program = compile_workload(ALL_XDP[4])  # xdp-balancer
        for insn in program.insns:
            assert insn.dst <= op.R10
            if not insn.is_ld_imm64:
                assert insn.src <= op.R10


class TestControlFlowEmission:
    def test_diamond(self):
        def body(b, f):
            then = f.add_block("then")
            other = f.add_block("other")
            merge = f.add_block("merge")
            p = b.gep_const(f.args[0], 0, ir.I64)
            v = b.load(p, align=8)
            cond = b.icmp("ugt", v, b.i64(100))
            b.cbr(cond, then, other)
            b.position_at_end(then)
            x = b.add(v, b.i64(1))
            b.br(merge)
            b.position_at_end(other)
            y = b.add(v, b.i64(2))
            b.br(merge)
            b.position_at_end(merge)
            phi = b.phi(ir.I64)
            phi.add_incoming(x, then)
            phi.add_incoming(y, other)
            b.ret(phi)

        ctx_hi = (200).to_bytes(8, "little") + bytes(56)
        ctx_lo = (50).to_bytes(8, "little") + bytes(56)
        _, hi = compile_and_run(body, ctx=ctx_hi)
        _, lo = compile_and_run(body, ctx=ctx_lo)
        assert (hi, lo) == (201, 52)

    def test_loop_with_phi(self):
        def body(b, f):
            header = f.add_block("header")
            loop_body = f.add_block("body")
            done = f.add_block("done")
            entry = b.block
            b.br(header)
            b.position_at_end(header)
            i_phi = b.phi(ir.I64)
            acc_phi = b.phi(ir.I64)
            cond = b.icmp("ult", i_phi, b.i64(10))
            b.cbr(cond, loop_body, done)
            b.position_at_end(loop_body)
            acc2 = b.add(acc_phi, i_phi)
            i2 = b.add(i_phi, b.i64(1))
            b.br(header)
            i_phi.add_incoming(b.i64(0), entry)
            i_phi.add_incoming(i2, loop_body)
            acc_phi.add_incoming(b.i64(0), entry)
            acc_phi.add_incoming(acc2, loop_body)
            b.position_at_end(done)
            b.ret(acc_phi)

        _, value = compile_and_run(body)
        assert value == 45

    def test_branch_offsets_valid(self):
        from repro.workloads.xdp import ALL_XDP, compile_workload

        for workload in ALL_XDP[:6]:
            program = compile_workload(workload)
            slots = program.slot_offsets()
            total = program.ni
            slot = 0
            for insn in program.insns:
                if insn.is_jump and not insn.is_call and not insn.is_exit:
                    target = slot + insn.slots + insn.off
                    assert 0 <= target <= total
                    assert target in slots or target == total
                slot += insn.slots
