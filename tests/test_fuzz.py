"""Differential-fuzzing subsystem tests.

Covers the generator layers, the shared oracle, a small end-to-end
campaign (``fuzz_smoke``), the assembler/disassembler round-trip
property, and the planted-bug self-test that proves the fuzzer can
detect, bisect, and minimize a genuine miscompile.  Long campaigns are
behind the ``fuzz`` marker and excluded from the default run.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.fuzz import (
    LAYERS,
    Observation,
    bisect_divergence,
    check_roundtrip,
    count_statements,
    diff_case,
    generate,
    minimize_divergence,
    planted_superword_bug,
    replay,
    run_campaign,
)
from repro.fuzz.differential import observe_baseline
from repro.isa import assemble, disassemble


# --- generators --------------------------------------------------------------

@pytest.mark.parametrize("layer", LAYERS)
def test_generator_deterministic(layer):
    a = generate(layer, 1234)
    b = generate(layer, 1234)
    assert a.text == b.text
    assert a.statements == count_statements(layer, a.text)
    assert a.statements > 0


@pytest.mark.parametrize("layer", LAYERS)
def test_generator_output_compiles(layer):
    for seed in range(6):
        case = generate(layer, seed)
        baseline = observe_baseline(case)
        assert baseline.program.ni > 0
        assert len(baseline.observations) == len(baseline.tests)


def test_generator_seeds_differ():
    texts = {generate("source", seed).text for seed in range(8)}
    assert len(texts) > 1


# --- oracle ------------------------------------------------------------------

def test_observation_differs():
    a = Observation(return_value=1, state=())
    assert a.differs_from(Observation(return_value=1, state=())) is None
    assert a.differs_from(Observation(return_value=2, state=())) == "return"
    assert a.differs_from(Observation(return_value=1, state=(1,))) == "state"
    assert a.differs_from(Observation(fault="VmFault")) == "fault"


# --- assembler/disassembler round-trip property ------------------------------

@settings(max_examples=30, deadline=None)
@given(st.sampled_from(LAYERS), st.integers(0, 1 << 20))
def test_asm_roundtrip_property(layer, seed):
    """assemble(disassemble(p)) == p for arbitrary generated programs,
    including map-using ones (ld_imm64 with BPF_PSEUDO_MAP_FD)."""
    case = generate(layer, seed)
    try:
        program = observe_baseline(case).program
    except Exception:
        return  # generator corner the toolchain rejects: nothing to check
    insns = list(program.insns)
    assert assemble(disassemble(insns)) == insns


def test_roundtrip_preserves_map_fd(counter_source):
    from repro import compile_bpf, compile_baseline

    program = compile_baseline(compile_bpf(counter_source), "count")
    assert any(i.is_ld_imm64 and i.src for i in program.insns)
    assert check_roundtrip(program)


# --- end-to-end campaigns ----------------------------------------------------

def test_fuzz_smoke():
    """A short campaign over all three layers must come back clean."""
    report = run_campaign(seed=0, budget=9, minimize=False)
    assert report.programs_run + report.programs_skipped == 9
    assert report.clean, report.to_json()
    assert report.to_dict()["divergences"] == 0


@pytest.mark.fuzz
def test_fuzz_campaign_budget_200():
    """The CLI smoke the issue asks for: `repro fuzz --budget 200`."""
    assert main(["fuzz", "--seed", "0", "--budget", "200"]) == 0


# --- planted-bug self-test ---------------------------------------------------

def test_planted_bug_found_bisected_minimized(tmp_path):
    """With an off-by-one planted in superword merging, the fuzzer must
    find a divergence within a fixed budget, bisect it to the slm pass,
    and minimize the reproducer to <= 10 statements."""
    with planted_superword_bug():
        report = run_campaign(seed=0, budget=12, corpus_dir=str(tmp_path),
                              layers=("bytecode",))
        assert report.findings, "planted bug not detected within budget"
        finding = report.findings[0]

        assert finding.bisect is not None
        assert finding.bisect.guilty_pass == "slm"
        assert finding.bisect.guilty_tier == "bytecode"

        assert finding.minimized is not None
        assert finding.minimized.statements <= 10
        # the shrunk program still diverges while the bug is in place
        case = finding.minimized
        assert replay(case.layer, case.text, entry=case.name) is not None

        assert finding.reproducer_path is not None
        with open(finding.reproducer_path) as handle:
            body = handle.read()
        assert "replay(" in body and repr(case.text) in body

    # bug removed: the minimized reproducer passes again
    assert replay(case.layer, case.text, entry=case.name) is None


def test_planted_bug_restores_flag():
    from repro.core.bytecode_passes import superword

    with planted_superword_bug():
        assert superword.PLANTED_OFFSET_BUG
    assert not superword.PLANTED_OFFSET_BUG


def test_bisect_and_minimize_direct():
    """bisect/minimize work when driven directly (not via the engine)."""
    with planted_superword_bug():
        divergence = None
        for seed in range(20):
            divergence = diff_case(generate("bytecode", seed))
            if divergence is not None:
                break
        assert divergence is not None
        result = bisect_divergence(divergence)
        assert result.guilty_pass == "slm" and result.standalone
        minimized = minimize_divergence(divergence)
        assert 0 < minimized.statements <= divergence.case.statements


# --- CLI ---------------------------------------------------------------------

def test_cli_fuzz_json(capsys):
    import json

    assert main(["fuzz", "--seed", "1", "--budget", "6", "--json",
                 "--no-minimize"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["clean"] and report["budget"] == 6


def test_cli_fuzz_writes_corpus(tmp_path):
    import os

    with planted_superword_bug():
        code = main(["fuzz", "--seed", "0", "--budget", "6",
                     "--layers", "bytecode", "--corpus", str(tmp_path)])
    assert code == 1  # findings -> nonzero exit
    assert any(name.startswith("test_") for name in os.listdir(tmp_path))


def test_cli_fuzz_rejects_bad_layer():
    assert main(["fuzz", "--budget", "1", "--layers", "nope"]) == 2
