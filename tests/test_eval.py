"""Evaluation-harness tests: RQ1-RQ5 machinery."""

import pytest

from repro.eval import (
    CORE_FREQ_HZ,
    NetworkEval,
    SecuritySystem,
    STAGE_ORDER,
    average_reduction,
    compare_verifier_cost,
    measure_compactness,
    measure_compile_cost,
    overhead_reduction,
    pct,
    render_series,
    render_table,
    run_lmbench,
    run_postmark,
    state_change_across_kernels,
    summarize,
)
from repro.workloads.suites import generate_suite
from repro.workloads.xdp import BY_NAME, compile_workload


@pytest.fixture(scope="module")
def xdp1_pair():
    return (compile_workload(BY_NAME["xdp1"]),
            compile_workload(BY_NAME["xdp1"], optimize=True))


@pytest.fixture(scope="module")
def sysdig_systems():
    progs = generate_suite("sysdig", seed=1, scale=0.05, count=4)
    original = SecuritySystem.from_suite("sysdig", progs, optimize=False)
    merlin = SecuritySystem.from_suite("sysdig+merlin", progs, optimize=True)
    return original, merlin


class TestCompactnessHarness:
    def test_staged_measurement(self):
        workload = BY_NAME["xdp1"]
        result = measure_compactness(workload.source, workload.entry,
                                     name=workload.name)
        assert result.verified
        assert result.ni_baseline > 0
        assert list(result.ni_after_stage) == list(STAGE_ORDER)
        # cumulative NI is monotonically non-increasing
        values = [result.ni_baseline] + list(result.ni_after_stage.values())
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_contributions_sum_to_total(self):
        workload = BY_NAME["xdp_ddos_mitigator"]
        result = measure_compactness(workload.source, workload.entry)
        total = sum(result.contribution(stage) for stage in STAGE_ORDER)
        assert total == pytest.approx(result.total_reduction, abs=1e-9)

    def test_summarize(self):
        workload = BY_NAME["xdp1"]
        result = measure_compactness(workload.source, workload.entry)
        summary = summarize([result])
        assert summary["avg_reduction"] == result.total_reduction
        assert summary["all_verified"] == 1.0
        assert "contrib_dao" in summary


class TestNetworkHarness:
    def test_merlin_has_higher_throughput(self, xdp1_pair):
        baseline, optimized = xdp1_pair
        ev = NetworkEval(packets=200, warmup=30)
        perf_base = ev.measure(baseline)
        perf_opt = ev.measure(optimized)
        assert perf_opt.throughput_mpps > perf_base.throughput_mpps
        assert perf_opt.cycles_per_packet < perf_base.cycles_per_packet

    def test_latency_monotonic_in_load(self, xdp1_pair):
        baseline, _ = xdp1_pair
        ev = NetworkEval(packets=150, warmup=30)
        perf = ev.measure(baseline)
        mpps = perf.throughput_mpps
        latencies = [ev.latency_us(perf, load * mpps)
                     for load in (0.3, 0.7, 0.95, 1.2)]
        assert latencies == sorted(latencies)

    def test_saturation_bounded_by_queue(self, xdp1_pair):
        baseline, _ = xdp1_pair
        ev = NetworkEval(packets=150, warmup=30)
        perf = ev.measure(baseline)
        saturated = ev.latency_us(perf, perf.throughput_mpps * 2)
        from repro.eval import BASE_LATENCY_US, QUEUE_DEPTH

        assert saturated == pytest.approx(
            BASE_LATENCY_US + QUEUE_DEPTH * perf.service_time_us
        )

    def test_table3_row_structure(self, xdp1_pair):
        baseline, optimized = xdp1_pair
        ev = NetworkEval(packets=150, warmup=30)
        row = ev.table3_row({
            "clang": ev.measure(baseline),
            "merlin": ev.measure(optimized),
        })
        assert "throughput_clang" in row
        assert "latency_low_merlin" in row
        assert row["latency_saturate_clang"] >= row["latency_low_clang"]

    def test_counters_window_scaling(self, xdp1_pair):
        baseline, _ = xdp1_pair
        ev = NetworkEval(packets=150, warmup=30)
        perf = ev.measure(baseline)
        low = ev.counters_in_window(perf, 0.3 * perf.throughput_mpps)
        sat = ev.counters_in_window(perf, 1.2 * perf.throughput_mpps)
        assert sat.instructions > low.instructions
        assert sat.context_switches > low.context_switches

    def test_forwarding_actions(self):
        # the four Table-3 programs forward (TX/redirect) seeded traffic
        from repro.workloads.xdp import FORWARDING

        ev = NetworkEval(packets=100, warmup=20)
        for name in FORWARDING[:2]:
            perf = ev.measure(compile_workload(BY_NAME[name]))
            assert 3 in perf.actions or 4 in perf.actions, name


class TestOverheadHarness:
    def test_equation1(self):
        # vanilla 1.0, original 2.0 (100% overhead), merlin 1.5 (50%)
        assert overhead_reduction(1.0, 2.0, 1.5) == pytest.approx(0.5)

    def test_equation1_no_overhead(self):
        assert overhead_reduction(1.0, 1.0, 1.0) == 0.0

    def test_lmbench_rows(self, sysdig_systems):
        original, merlin = sysdig_systems
        results = run_lmbench(original, merlin)
        assert len(results) == 15
        for row in results:
            assert row.with_merlin_us <= row.with_original_us + 1e-9
            assert row.with_original_us >= row.vanilla_us

    def test_average_reduction_positive(self, sysdig_systems):
        original, merlin = sysdig_systems
        results = run_lmbench(original, merlin)
        assert average_reduction(results) > 0

    def test_postmark(self, sysdig_systems):
        original, merlin = sysdig_systems
        row = run_postmark(original, merlin)
        assert row.with_merlin_us <= row.with_original_us
        assert row.reduction >= 0

    def test_event_cost_cached(self, sysdig_systems):
        original, _ = sysdig_systems
        first = original.event_cost("sys_enter")
        second = original.event_cost("sys_enter")
        assert first is second

    def test_event_counters_scale_with_count(self, sysdig_systems):
        original, _ = sysdig_systems
        once = original.event_counters((("sys_enter", 1),))
        many = original.event_counters((("sys_enter", 10),))
        assert many.instructions == 10 * once.instructions


class TestVerifierStatsHarness:
    def test_comparison(self, xdp1_pair):
        baseline, optimized = xdp1_pair
        comparison = compare_verifier_cost(baseline, optimized)
        assert comparison.both_ok
        assert 0 <= comparison.npi_reduction <= 1
        assert comparison.npi_after <= comparison.npi_before

    def test_state_changes_across_kernels(self, xdp1_pair):
        baseline, optimized = xdp1_pair
        changes = state_change_across_kernels(baseline, optimized)
        assert set(changes) == {"5.19", "6.5"}
        for peak, total in changes.values():
            assert isinstance(peak, float)
            assert isinstance(total, float)


class TestCompileCostHarness:
    def test_per_optimizer_times(self):
        workload = BY_NAME["xdp1"]
        cost = measure_compile_cost(workload.source, workload.entry)
        assert cost.total_seconds > 0
        assert set(cost.per_optimizer) >= {"DAO", "MoF", "CC", "PO", "SLM",
                                           "CP/DCE", "Dep"}
        assert all(v >= 0 for v in cost.per_optimizer.values())

    def test_cost_grows_with_size(self):
        small = BY_NAME["xdp1"]
        big = BY_NAME["xdp-balancer"]
        cost_small = measure_compile_cost(small.source, small.entry)
        cost_big = measure_compile_cost(big.source, big.entry)
        assert cost_big.total_seconds > cost_small.total_seconds
        assert cost_big.ni > cost_small.ni


class TestReport:
    def test_render_table(self):
        text = render_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="T")
        assert "T" in text
        assert "a" in text and "2.500" in text

    def test_render_series(self):
        text = render_series("fig", [(1, 2)], x_label="ni", y_label="s")
        assert "fig" in text and "ni" in text

    def test_pct(self):
        assert pct(0.5) == "50.00%"
