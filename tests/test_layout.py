"""Tests for the profile-guided layout tier (repro.core.bytecode_passes.
layout) and its seams.

Covers condition inversion, CFG decomposition, branch straightening and
chain reordering on hand-built programs, profile collection (including
the predictor-reset isolation regression), the signed-16-bit relocation
bail-out, witness certification (and refutation of tampered witnesses),
the pipeline/cache integration of ``pgo=``, and the layout-on vs
layout-off behavioral property over fuzz-generated programs.
"""

import pytest

from repro.cache import CompilationCache, compose_key
from repro.core import MerlinPipeline
from repro.core.bytecode_passes.layout import (
    ExecutionProfile,
    PgoSpec,
    ProfileGuidedLayoutPass,
    collect_profile,
    control_flow_blocks,
    invert_condition,
)
from repro.core.bytecode_passes.symbolic import SymbolicProgram
from repro.frontend import compile_source
from repro.hw import ProfilingBranchPredictor
from repro.isa import BpfProgram, ProgramType, assemble
from repro.isa import opcodes as op
from repro.isa.instruction import jump, jump32, mov64_imm
from repro.tv import WitnessRecorder
from repro.tv.regioncheck import validate_bytecode_witness
from repro.verifier import KERNELS
from repro.vm import Machine


def prog(source, name="p"):
    return BpfProgram(name, assemble(source))


#: the hot direction is the jump *target* — exactly what straightening
#: exists to fix (the 2-bit predictor boots weakly not-taken)
HOT_TAKEN_SRC = """
    r0 = *(u64 *)(r1 + 0)
    if r0 != 0 goto hot
    r0 = 1
    exit
hot:
    r0 += 7
    r0 *= 3
    exit
"""

#: unconditional jump over a never-executed block: reordering should
#: make the ja disappear and sink the cold block
JA_CHAIN_SRC = """
    r0 = *(u64 *)(r1 + 0)
    goto work
dead:
    r0 = 99
    exit
work:
    r0 += 1
    exit
"""


def hot_profile(program, slot, entries=8):
    """A profile that saw the conditional at *slot* always taken."""
    del program
    return ExecutionProfile(entries=entries, taken={slot: entries},
                            not_taken={slot: 0})


def run_value(program, first_word):
    ctx = first_word.to_bytes(8, "little") + bytes(56)
    machine = Machine(program)
    return machine.run(ctx=ctx).return_value, machine.counters


# ======================================================== inversion
class TestInvertCondition:
    PAIRS = [
        ("jeq", "jne"), ("jne", "jeq"),
        ("jgt", "jle"), ("jle", "jgt"),
        ("jge", "jlt"), ("jlt", "jge"),
        ("jsgt", "jsle"), ("jsle", "jsgt"),
        ("jsge", "jslt"), ("jslt", "jsge"),
    ]

    @pytest.mark.parametrize("name,inverse", PAIRS)
    def test_every_pair(self, name, inverse):
        insn = jump(name, dst=3, imm=17, off=5)
        flipped = invert_condition(insn)
        assert flipped is not None
        assert flipped.jmp_op == op.JMP_OP_BY_NAME[inverse]
        # class, operands and immediate carry over
        assert flipped.dst == insn.dst
        assert flipped.imm == insn.imm
        assert flipped.opcode & op.CLASS_MASK == insn.opcode & op.CLASS_MASK

    def test_double_inversion_is_identity(self):
        insn = jump("jgt", dst=2, imm=9, off=3)
        assert invert_condition(invert_condition(insn)) == insn

    def test_jmp32_class_preserved(self):
        insn = jump32("jeq", dst=1, imm=4, off=2)
        flipped = invert_condition(insn)
        assert flipped.opcode & op.CLASS_MASK == op.BPF_JMP32
        assert flipped.jmp_op == op.BPF_JNE

    def test_jset_has_no_complement(self):
        assert invert_condition(jump("jset", dst=1, imm=1, off=1)) is None


# ======================================================== CFG shape
class TestControlFlowBlocks:
    def test_straight_line_is_one_block(self):
        sym = SymbolicProgram.from_program(prog("""
    r0 = 4
    r0 += 1
    exit
"""))
        blocks = control_flow_blocks(sym)
        assert len(blocks) == 1
        assert blocks[0].kind == "exit"
        assert (blocks[0].first, blocks[0].last) == (0, 2)

    def test_diamond(self):
        sym = SymbolicProgram.from_program(prog(HOT_TAKEN_SRC))
        blocks = control_flow_blocks(sym)
        # entry(cond) / cold fall-through(exit) / hot target(exit)
        assert [b.kind for b in blocks] == ["cond", "exit", "exit"]
        entry = blocks[0]
        assert entry.taken == 2
        assert entry.fall == 1

    def test_ja_blocks_and_successors(self):
        sym = SymbolicProgram.from_program(prog(JA_CHAIN_SRC))
        blocks = control_flow_blocks(sym)
        assert [b.kind for b in blocks] == ["jump", "exit", "exit"]
        assert blocks[0].fall == 2  # goto work


# ================================================= the pass itself
class TestStraightening:
    def test_hot_taken_branch_is_inverted(self):
        program = prog(HOT_TAKEN_SRC)
        assert program.insns[1].jmp_op == op.BPF_JNE
        layout = ProfileGuidedLayoutPass(hot_profile(program, slot=1))
        assert layout.run(program) >= 1
        # straightened: the condition flipped and the hot block now
        # falls through directly after the compare
        assert program.insns[1].jmp_op == op.BPF_JEQ

    def test_behavior_identical_and_misses_drop(self):
        before = prog(HOT_TAKEN_SRC)
        after = before.copy()
        layout = ProfileGuidedLayoutPass(hot_profile(before, slot=1))
        assert layout.run(after) >= 1
        miss_before = miss_after = 0
        for word in (0, 1, 5, 0xFFFF, 3):
            rv_b, counters_b = run_value(before, word)
            rv_a, counters_a = run_value(after, word)
            assert rv_b == rv_a
            miss_before += counters_b.branch_misses
            miss_after += counters_a.branch_misses
        # the hot (nonzero) inputs no longer pay the cold-start
        # mispredict; the rare cold input may pay instead
        assert miss_after < miss_before

    def test_cold_profile_is_a_noop(self):
        program = prog(HOT_TAKEN_SRC)
        snapshot = list(program.insns)
        # the hot direction already falls through: nothing to do
        profile = ExecutionProfile(entries=8, taken={1: 0},
                                   not_taken={1: 8})
        assert ProfileGuidedLayoutPass(profile).run(program) == 0
        assert program.insns == snapshot

    def test_empty_profile_is_a_noop(self):
        program = prog(HOT_TAKEN_SRC)
        snapshot = list(program.insns)
        assert ProfileGuidedLayoutPass(ExecutionProfile()).run(program) == 0
        assert program.insns == snapshot


class TestReordering:
    def test_hot_ja_is_eliminated_and_cold_sinks(self):
        program = prog(JA_CHAIN_SRC)
        ni_before = len(program.insns)
        profile = ExecutionProfile(entries=8)  # no conditionals at all
        layout = ProfileGuidedLayoutPass(profile)
        assert layout.run(program) >= 1
        # the goto disappeared: work is now the fall-through
        assert len(program.insns) == ni_before - 1
        plain_ja = [i for i in program.insns
                    if i.is_jump and not i.is_call and not i.is_exit
                    and i.jmp_op == op.BPF_JA]
        assert plain_ja == []
        for word in (0, 7, 123456):
            rv, _ = run_value(program, word)
            assert rv == word + 1  # dead block (r0 = 99) never runs

    def test_relocation_overflow_bails_untouched(self):
        # entry cond jumps over ~40k filler instructions; any layout
        # that moves the far block adjacent would leave the filler
        # block's fixup ja out of signed-16-bit range
        filler = 40_000
        insns = ([jump("jeq", dst=0, imm=0, off=filler)]
                 + [mov64_imm(0, 0)] * filler
                 + [jump("exit")])
        program = BpfProgram("far", insns)
        snapshot = list(program.insns)
        profile = ExecutionProfile(entries=4, taken={0: 4},
                                   not_taken={0: 0})
        assert ProfileGuidedLayoutPass(profile).run(program) == 0
        assert program.insns == snapshot


# ============================================== witnesses / TV seam
class TestLayoutWitnesses:
    def relay(self, source, slot=1):
        program = prog(source)
        layout = ProfileGuidedLayoutPass(hot_profile(program, slot=slot))
        recorder = WitnessRecorder()
        layout.recorder = recorder
        rewrites = layout.run(program)
        return program, rewrites, recorder.witnesses

    def test_every_rewrite_carries_a_certified_witness(self):
        _, rewrites, witnesses = self.relay(HOT_TAKEN_SRC)
        assert rewrites >= 1
        assert len(witnesses) == 1
        witness = witnesses[0]
        assert witness.kind == "layout"
        cert = validate_bytecode_witness(witness)
        assert cert.status == "proved"
        assert cert.certified

    def test_tampered_body_is_refuted(self):
        _, _, witnesses = self.relay(HOT_TAKEN_SRC)
        witness = witnesses[0]
        # corrupt a non-branch instruction in the claimed result
        for index, insn in enumerate(witness.after_insns):
            if not insn.is_jump and not insn.is_exit:
                witness.after_insns[index] = insn.with_(imm=insn.imm ^ 1)
                break
        cert = validate_bytecode_witness(witness)
        assert cert.status == "refuted"

    def test_retargeted_branch_is_refuted(self):
        _, _, witnesses = self.relay(HOT_TAKEN_SRC)
        witness = witnesses[0]
        # rewire the straightened conditional somewhere else entirely
        for index, insn in enumerate(witness.after_insns):
            if insn.is_jump and not insn.is_exit and insn.jmp_op != op.BPF_JA:
                witness.after_insns[index] = insn.with_(off=insn.off + 1)
                break
        cert = validate_bytecode_witness(witness)
        assert cert.status == "refuted"


# ===================================== profile collection (S1 seam)
class TestProfileCollection:
    def test_collect_profile_sees_the_hot_direction(self):
        program = prog(HOT_TAKEN_SRC)
        profile = collect_profile(program, spec=PgoSpec(tests=6, seed=3))
        assert profile.entries == 6
        total = sum(profile.taken.values()) + sum(profile.not_taken.values())
        assert total == 6  # one conditional per entry

    def test_predictor_state_leaks_across_machines_without_reset(self):
        """The regression the explicit reset() guards against: a shared
        predictor carries both tallies and 2-bit counter state from one
        Machine to the next."""
        program = prog(HOT_TAKEN_SRC)
        ctx = (7).to_bytes(8, "little") + bytes(56)
        predictor = ProfilingBranchPredictor()
        cold = Machine(program, branch=predictor)
        cold.run(ctx=ctx)
        tallies_after_one = dict(predictor.taken_counts)
        warm = Machine(program, branch=predictor)
        warm.run(ctx=ctx)
        # tallies accumulated across machines...
        assert sum(predictor.taken_counts.values()) > \
            sum(tallies_after_one.values())
        # ...the second machine inherited a trained predictor (no
        # mispredict penalty in its cycles)...
        assert warm.counters.cycles < cold.counters.cycles
        # ...and its mirrored miss counter reports the *shared*
        # cumulative stats — a miss this machine never paid
        assert warm.counters.branch_misses == cold.counters.branch_misses
        predictor.reset()
        assert predictor.taken_counts == {}
        assert predictor.not_taken_counts == {}
        fresh = Machine(program, branch=predictor)
        fresh.run(ctx=ctx)
        # reset restores cold-start behavior exactly
        assert fresh.counters.cycles == cold.counters.cycles
        assert fresh.counters.branch_misses == 1

    def test_back_to_back_collections_are_independent(self):
        """collect_profile resets the shared predictor, so profiling
        program A first must not change program B's profile."""
        a = prog(JA_CHAIN_SRC, name="a")
        b = prog(HOT_TAKEN_SRC, name="b")
        spec = PgoSpec(tests=5, seed=11)
        isolated = collect_profile(b, spec=spec)
        shared = ProfilingBranchPredictor()
        collect_profile(a, spec=spec, predictor=shared)
        chained = collect_profile(b, spec=spec, predictor=shared)
        assert chained.taken == isolated.taken
        assert chained.not_taken == isolated.not_taken
        assert chained.entries == isolated.entries


# ========================================== pipeline / cache seams
BRANCHY_C = """
u64 pick(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    u64 acc = 1;
    if (a > 3) { acc = a * 5; }
    if (a > 300) { acc = acc + 9; }
    return acc;
}
"""


class TestPipelineIntegration:
    def test_optimize_program_pgo_validates_layout(self):
        program = prog(HOT_TAKEN_SRC)
        optimized, report = MerlinPipeline().optimize_program(
            program, validate=True, pgo=True)
        stats = [s for s in report.pass_stats if s.name == "layout"]
        assert stats and stats[0].rewrites >= 1
        assert stats[0].details["profiled_runs"] == PgoSpec().tests
        layout_certs = [c for c in report.certificates
                        if c.pass_name == "layout"]
        assert layout_certs and all(c.certified for c in layout_certs)

    def test_pgo_spec_variants_accepted(self):
        program = prog(HOT_TAKEN_SRC)
        pipeline = MerlinPipeline()
        for pgo in (True, {"tests": 4, "seed": 5}, PgoSpec(tests=4)):
            _, report = pipeline.optimize_program(program.copy(), pgo=pgo)
            assert any(s.name == "layout" for s in report.pass_stats)

    def test_compile_pgo_is_a_distinct_cache_entry(self):
        cache = CompilationCache()
        module = compile_source(BRANCHY_C)
        func = module.get("pick")
        pipeline = MerlinPipeline()

        def compile_once(pgo):
            return pipeline.compile(
                func, module, prog_type=ProgramType.TRACEPOINT,
                ctx_size=64, cache=cache, pgo=pgo)

        _, with_pgo = compile_once(True)
        _, without = compile_once(None)
        assert without.cached is False  # different key, not a hit
        assert with_pgo.cache_key != without.cache_key
        _, again = compile_once(True)
        assert again.cached is True
        assert again.cache_key == with_pgo.cache_key

    def test_compose_key_folds_the_pgo_fingerprint(self):
        base = dict(enabled=frozenset({"cc"}), kernel=KERNELS["6.5"])
        plain = compose_key("ir-text", **base)
        spec = PgoSpec()
        keyed = compose_key("ir-text", pgo=spec.fingerprint(), **base)
        other = compose_key("ir-text", pgo=PgoSpec(tests=9).fingerprint(),
                            **base)
        assert len({plain, keyed, other}) == 3

    def test_fingerprint_is_deterministic(self):
        assert PgoSpec().fingerprint() == PgoSpec().fingerprint()
        assert PgoSpec.from_dict({"tests": 3}).fingerprint() == \
            PgoSpec(tests=3).fingerprint()


# ======================================== layout-on vs layout-off (S4)
def _layout_property(count, seed_base):
    from repro.fuzz import check_layout, generate, observe_baseline
    from repro.fuzz.generator import LAYERS

    for index in range(count):
        layer = LAYERS[index % len(LAYERS)]
        case = generate(layer, seed_base + index)
        baseline = observe_baseline(case)
        divergence = check_layout(case, baseline)
        assert divergence is None, (
            f"layout changed behaviour for {layer} seed "
            f"{seed_base + index}: {divergence.detail}")


class TestLayoutProperty:
    def test_layout_preserves_behavior_smoke(self):
        _layout_property(24, seed_base=52_000)

    @pytest.mark.fuzz
    def test_layout_preserves_behavior_200(self):
        """ISSUE 7 S4: 200 fuzz-generated programs, layout-on vs
        layout-off bit-identical under both engines, every rewrite
        certified (check_layout enforces all three)."""
        _layout_property(200, seed_base=91_000)
