"""asm -> disasm -> asm round-trip property over fuzz-generated
programs.  The ISA text format must be lossless: minimized reproducers,
witness dumps, and regression tests all quote it."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzz.differential import build_program
from repro.fuzz.generator import LAYERS, generate
from repro.isa import assemble, disassemble
from repro.isa import instruction as ins

pytestmark = pytest.mark.tv


def _roundtrip(insns):
    return assemble(disassemble(list(insns)))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 31), data=st.data())
def test_generated_program_roundtrips(seed, data):
    layer = data.draw(st.sampled_from(LAYERS))
    case = generate(layer, seed)
    try:
        program = build_program(case)
    except Exception:
        return  # generator occasionally emits programs codegen rejects
    assert _roundtrip(program.insns) == list(program.insns)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 31))
def test_optimized_program_roundtrips(seed):
    # the bytecode tier introduces store-immediates, 32-bit movs and
    # rewritten shifts; those must round-trip too
    case = generate("bytecode", seed)
    try:
        program = build_program(case, frozenset({"cpdce", "slm", "cc", "po"}))
    except Exception:
        return
    assert _roundtrip(program.insns) == list(program.insns)


class TestLdImm64Forms:
    def test_map_fd_form_roundtrips(self):
        insns = [
            ins.ld_imm64(1, 3, src=1),  # map_fd 3 ll
            ins.ld_imm64(2, 0x1122334455667788),
            ins.exit_(),
        ]
        assert _roundtrip(insns) == insns

    def test_map_fd_text_form(self):
        text = disassemble([ins.ld_imm64(1, 3, src=1)])
        assert "map_fd" in text
        assert "ll" in text
        assert assemble(text) == [ins.ld_imm64(1, 3, src=1)]

    def test_negative_and_boundary_immediates(self):
        insns = [
            ins.ld_imm64(4, (1 << 64) - 1),
            ins.ld_imm64(5, 1 << 63),
            ins.mov64_imm(1, -(1 << 31)),
            ins.exit_(),
        ]
        assert _roundtrip(insns) == insns
