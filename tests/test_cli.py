"""CLI smoke tests."""

import pytest

from repro.cli import main

SOURCE = """
u32 f(u8* ctx) {
    u64 data = ctx->data;
    u64 end = ctx->data_end;
    if (data + 14 > end) { return XDP_DROP; }
    u16 proto = *(u16*)(data + 12);
    if (proto == 0x0800) { return XDP_PASS; }
    return XDP_DROP;
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


def test_compile(source_file, capsys):
    assert main(["compile", source_file]) == 0
    out = capsys.readouterr().out
    assert "exit" in out

def test_compile_merlin_smaller(source_file, capsys):
    main(["compile", source_file])
    plain = capsys.readouterr().out
    main(["compile", source_file, "--merlin"])
    merlin = capsys.readouterr().out
    assert len(merlin.splitlines()) <= len(plain.splitlines())


def test_verify_ok(source_file, capsys):
    assert main(["verify", source_file, "--merlin"]) == 0
    assert "ok=True" in capsys.readouterr().out


def test_verify_rejects_bad(tmp_path, capsys):
    bad = tmp_path / "bad.c"
    bad.write_text("""
u32 f(u8* ctx) {
    u64 data = ctx->data;
    return (u32)*(u8*)(data + 0);
}
""")
    assert main(["verify", str(bad)]) == 1
    assert "rejected" in capsys.readouterr().out


def test_run(source_file, capsys):
    assert main(["run", source_file, "--merlin"]) == 0
    out = capsys.readouterr().out
    assert "action=PASS" in out
    assert "cycles=" in out


def test_optimize_report(source_file, capsys):
    assert main(["optimize", source_file]) == 0
    out = capsys.readouterr().out
    assert "NI" in out and "verifier: ok=True" in out


def test_old_kernel_flag(source_file, capsys):
    assert main(["verify", source_file, "--kernel", "4.15"]) == 0
