"""Tests for the fleet tier (repro.serve.fleet).

Covers the consistent-hash ring, the router's protocol surface (a
client must not be able to tell the router from a single daemon), the
stats-aggregation contract (fleet aggregate == sum of per-shard
deltas), structured shard-loss with respawn, drain shutdown with zero
drops, trace record/replay determinism, and cross-shard cache
contention under TTL eviction.
"""

import time

import pytest

from repro.eval.serviceperf import scan_cache_tree
from repro.serve import ServeClient
from repro.serve.fleet import (
    FleetConfig,
    FleetThread,
    HashRing,
    aggregate_shard_stats,
)
from repro.serve.loadgen import PoolProgram
from repro.serve.trace import (
    TraceEvent,
    load_trace,
    replay_trace,
    save_trace,
    synthesize_trace,
)

SOURCES = [
    ("fold", """
u64 fold(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    u64 b = 2 + 3;
    return a + b;
}
"""),
    ("mask", """
u64 mask(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    u64 b = *(u64*)(ctx + 8);
    return (a & 0xff) + (b >> 3);
}
"""),
    ("branchy", """
u64 branchy(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    u64 acc = 0;
    if (a > 7) { acc = acc + a; }
    if (a > 70) { acc = acc * 3; }
    return acc;
}
"""),
    ("narrow", """
u64 narrow(u8* ctx) {
    u32 a = *(u32*)(ctx + 0);
    u32 b = (u32)a * 5;
    return (u64)b;
}
"""),
]

POOL = [PoolProgram(name=name, source=source, entry=name)
        for name, source in SOURCES]


def payload(name, source, **extra):
    out = {"op": "compile", "name": name, "source": source,
           "entry": name, "prog_type": "tracepoint", "ctx_size": 64}
    out.update(extra)
    return out


@pytest.fixture(scope="module")
def fleet():
    config = FleetConfig(shards=2, max_batch=8, max_delay=0.005)
    with FleetThread(config) as handle:
        yield handle


@pytest.fixture
def client(fleet):
    handle = ServeClient(fleet.address)
    yield handle
    handle.close()


# ========================================================== hash ring
class TestHashRing:
    def test_lookup_is_deterministic(self):
        ring = HashRing(range(4))
        picks = [ring.lookup(f"key-{i}") for i in range(64)]
        assert picks == [HashRing(range(4)).lookup(f"key-{i}")
                         for i in range(64)]

    def test_shares_are_reasonably_even(self):
        shares = HashRing(range(4), vnodes=64).shares()
        assert len(shares) == 4
        assert max(shares.values()) / min(shares.values()) < 3.0

    def test_dead_shard_overflows_to_live_one(self):
        ring = HashRing(range(3))
        moved = kept = 0
        for i in range(128):
            key = f"key-{i}"
            home = ring.lookup(key)
            alive = {0, 1, 2} - {home}
            fallback = ring.lookup(key, alive=alive)
            assert fallback in alive
            # killing an unrelated shard must not move this key
            other = next(iter(alive))
            still = ring.lookup(key, alive={0, 1, 2} - {other})
            if still == home:
                kept += 1
            else:
                moved += 1
        assert moved == 0 and kept == 128

    def test_no_live_shard_returns_none(self):
        ring = HashRing(range(2))
        assert ring.lookup("anything", alive=set()) is None

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])


class TestFleetConfig:
    def test_shard_configs_inherit_shared_cache(self, tmp_path):
        config = FleetConfig(shards=3, runtime_dir=str(tmp_path),
                             jobs=2, cache_ttl=5.0,
                             cache_max_bytes=1 << 20)
        for index in range(3):
            shard = config.shard_config(index)
            assert shard.cache_dir == config.cache_dir
            assert shard.shard_id == index
            assert shard.jobs == 2
            assert shard.cache_ttl == 5.0
            assert shard.cache_max_bytes == 1 << 20
            assert shard.socket_path == config.shard_socket(index)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError):
            FleetConfig(shards=0)


# ==================================================== router protocol
class TestRouterProtocol:
    def test_ping_reports_fleet(self, client):
        response = client.ping()
        assert response["result"]["router"] is True
        assert response["result"]["shards"] == 2
        assert response["result"]["alive_shards"] == 2

    def test_compile_and_cached_repeat(self, client):
        name, source = SOURCES[0]
        first = client.request(payload(name, source), check=True)
        again = client.request(payload(name, source), check=True)
        assert first["result"]["ni_optimized"] == \
            again["result"]["ni_optimized"]
        assert again["result"]["cached"] is True

    def test_malformed_line_gets_bad_json(self, client):
        client.send_raw(b"not json at all\n")
        response = client.recv()
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-json"
        assert response["id"] is None

    def test_unknown_op_forwarded_to_shard(self, client):
        response = client.request({"op": "transmogrify"})
        assert response["ok"] is False
        assert response["error"]["code"] == "unknown-op"

    def test_bad_request_forwarded_to_shard(self, client):
        response = client.request({"op": "compile", "source": "x",
                                   "priority": 99})
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-request"

    def test_routing_affinity_is_stable(self, fleet, client):
        # the router must send identical sources to identical shards
        for name, source in SOURCES:
            first = fleet.router.home_shard(source)
            assert fleet.router.home_shard(source) == first
            assert first in (0, 1)
        # and the ring spreads distinct sources across the fleet
        homes = {fleet.router.home_shard(f"u64 f() {{ return {i}; }}")
                 for i in range(64)}
        assert homes == {0, 1}

    def test_responses_in_arrival_order(self, client):
        responses = client.compile_pipelined(
            [payload(name, source) for name, source in SOURCES] * 3)
        assert all(r["ok"] for r in responses)


# ============================================== stats aggregation (S1)
class TestStatsAggregation:
    def test_fleet_aggregate_equals_sum_of_shards(self, client):
        before = client.stats()
        k = 6
        programs = [(f"agg{i}", f"u64 agg{i}(u8* ctx) {{ "
                     f"return {i} + 40; }}") for i in range(k)]
        responses = client.compile_pipelined(
            [payload(name, source) for name, source in programs])
        assert all(r["ok"] for r in responses)
        after = client.stats()

        def per_shard(snapshot, path):
            out = {}
            for entry in snapshot["shards"]:
                node = entry["stats"]
                for part in path:
                    node = node[part]
                out[entry["shard"]] = node
            return out

        for path in (("requests", "compiles"),
                     ("requests", "responded"),
                     ("cache", "stores"), ("cache", "hits"),
                     ("cache", "misses"),
                     ("batches", "dispatched")):
            shard_sum = sum(per_shard(after, path).values())
            agg = after["fleet"]
            for part in path:
                agg = agg[part]
            assert agg == shard_sum, path
            # the regression pin: aggregate delta == sum of per-shard
            # deltas (nothing double counted, nothing lost)
            before_agg = before["fleet"]
            for part in path:
                before_agg = before_agg[part]
            delta_sum = sum(per_shard(after, path).values()) - \
                sum(per_shard(before, path).values())
            assert agg - before_agg == delta_sum, path

        compile_delta = (after["fleet"]["requests"]["compiles"]
                         - before["fleet"]["requests"]["compiles"])
        assert compile_delta == k

    def test_latency_aggregate_is_conservative(self, client):
        snapshot = client.stats()
        fleet_lat = snapshot["fleet"]["latency"]
        shard_lats = [entry["stats"]["latency"]
                      for entry in snapshot["shards"]]
        assert fleet_lat["count"] == sum(l["count"] for l in shard_lats)
        assert fleet_lat["p99_ms_worst"] == max(
            l["p99_ms"] for l in shard_lats)
        assert fleet_lat["p999_ms_worst"] >= 0

    def test_aggregate_shard_stats_pure_function(self):
        snapshots = [
            {"requests": {"received": 5, "compiles": 3},
             "queue": {"depth": 1, "peak_depth": 4},
             "batches": {"dispatched": 2, "requests": 3, "max_size": 2,
                         "preempted": 1},
             "cache": {"hits": 2, "misses": 1, "stores": 1},
             "throughput": {"programs_per_second": 10.0,
                            "busy_seconds": 0.5},
             "latency": {"count": 3, "p50_ms": 1.0, "p99_ms": 2.0,
                         "p999_ms": 2.5, "max_ms": 3.0, "mean_ms": 1.5},
             "fairness": {"served_by_tenant": {"a": 2, "b": 1},
                          "served_by_priority": {"0": 3}}},
            {"requests": {"received": 7, "compiles": 6},
             "queue": {"depth": 0, "peak_depth": 9},
             "batches": {"dispatched": 3, "requests": 6, "max_size": 3,
                         "preempted": 0},
             "cache": {"hits": 5, "misses": 1, "stores": 1},
             "throughput": {"programs_per_second": 20.0,
                            "busy_seconds": 1.5},
             "latency": {"count": 6, "p50_ms": 2.0, "p99_ms": 8.0,
                         "p999_ms": 9.0, "max_ms": 9.5, "mean_ms": 3.0},
             "fairness": {"served_by_tenant": {"b": 4, "c": 2},
                          "served_by_priority": {"0": 4, "5": 2}}},
        ]
        agg = aggregate_shard_stats(snapshots)
        assert agg["shards"] == 2
        assert agg["requests"]["received"] == 12
        assert agg["requests"]["compiles"] == 9
        assert agg["queue"]["peak_depth"] == 9
        assert agg["batches"]["preempted"] == 1
        assert agg["cache"]["hits"] == 7
        assert agg["cache"]["hit_rate"] == round(7 / 9, 4)
        assert agg["latency"]["count"] == 9
        assert agg["latency"]["p99_ms_worst"] == 8.0
        assert agg["latency"]["mean_ms"] == round(
            (1.5 * 3 + 3.0 * 6) / 9, 3)
        assert agg["fairness"]["served_by_tenant"] == {
            "a": 2, "b": 5, "c": 2}
        assert agg["fairness"]["served_by_priority"] == {"0": 7, "5": 2}
        assert aggregate_shard_stats([]) == {"shards": 0}


# ============================================ trace record/replay (S4)
class TestTraceRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        events = synthesize_trace(POOL, requests=5, clients=2, seed=11,
                                  mean_gap=0.001,
                                  priority_mix={0: 0.8, 4: 0.2})
        path = str(tmp_path / "trace.jsonl")
        save_trace(path, events)
        loaded = load_trace(path)
        assert [e.to_line() for e in loaded] == \
            [e.to_line() for e in events]
        assert all(e.payload.get("tenant") for e in loaded)

    def test_synthesis_is_deterministic(self):
        a = synthesize_trace(POOL, requests=8, clients=3, seed=5)
        b = synthesize_trace(POOL, requests=8, clients=3, seed=5)
        assert [e.to_line() for e in a] == [e.to_line() for e in b]
        c = synthesize_trace(POOL, requests=8, clients=3, seed=6)
        assert [e.to_line() for e in a] != [e.to_line() for e in c]

    def test_bad_trace_rejected(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as fh:
            fh.write('{"t": -1, "client": 0, "payload": {}}\n')
        with pytest.raises(ValueError):
            load_trace(path)
        with open(path, "w") as fh:
            fh.write("")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_replay_twice_is_byte_identical(self, fleet, tmp_path):
        """S4: against a warm fleet, two speed-0 replays of one trace
        return byte-identical responses and identical per-tenant
        ordering."""
        events = synthesize_trace(POOL, requests=12, clients=3, seed=3,
                                  mean_gap=0.0)
        path = str(tmp_path / "det.jsonl")
        save_trace(path, events)
        events = load_trace(path)
        warmup = replay_trace(fleet.address, events, speed=0)
        assert warmup.dropped == 0 and not warmup.failures
        first = replay_trace(fleet.address, events, speed=0)
        second = replay_trace(fleet.address, events, speed=0)
        for run in (first, second):
            assert run.dropped == 0 and not run.failures
            assert run.ok == run.received == len(events)
            assert run.cached == run.received  # warm: all cache-served
        assert first.digests == second.digests
        assert first.tenant_orders == second.tenant_orders
        assert first.goodput_spread() == pytest.approx(1.0)

    def test_replay_honors_recorded_timing(self, fleet):
        # ~30ms of recorded gaps at speed 1 cannot finish instantly,
        # and speed 0 must ignore the gaps entirely
        events = [TraceEvent(t=i * 0.01, client=0,
                             payload=payload(*SOURCES[0]))
                  for i in range(4)]
        timed = replay_trace(fleet.address, events, speed=1.0)
        assert timed.wall_seconds >= 0.03
        flat = replay_trace(fleet.address, events, speed=0)
        assert flat.wall_seconds < timed.wall_seconds
        assert timed.dropped == flat.dropped == 0


# ======================================= shard loss + drain (S3)
class TestShardFailure:
    def test_kill_mid_batch_yields_shard_lost_then_respawn(self):
        config = FleetConfig(shards=2, max_batch=4, max_delay=0.005,
                             reconnect_delay=0.05)
        with FleetThread(config) as fleet:
            with ServeClient(fleet.address) as client:
                # cold burst pinned to one shard, killed mid-flight:
                # every request must resolve (ok or shard-lost), never
                # hang
                victim_source = "u64 v(u8* ctx) { return 1234; }"
                victim = fleet.router.home_shard(victim_source)
                burst = [payload(f"v{i}",
                                 f"u64 v{i}(u8* ctx) {{ "
                                 f"return {i} + 9000; }}")
                         for i in range(12)]
                ids = [client.send(p) for p in burst]
                fleet.kill_shard(victim)
                responses = [client.recv() for _ in ids]
                assert [r["id"] for r in responses] == ids
                codes = set()
                for response in responses:
                    if response["ok"]:
                        codes.add("ok")
                    else:
                        codes.add(response["error"]["code"])
                assert codes <= {"ok", "shard-lost"}, codes

                # the supervisor must bring the shard back
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    alive = client.ping()["result"]["alive_shards"]
                    if alive == 2:
                        break
                    time.sleep(0.1)
                assert alive == 2
                recovered = client.request(
                    payload("v", victim_source), check=True)
                assert recovered["ok"]
                snapshot = client.stats()
                assert snapshot["router"]["respawns"] >= 1
                assert snapshot["router"]["reconnects"] >= 1

    def test_requests_reroute_while_shard_down(self):
        config = FleetConfig(shards=2, max_delay=0.005, respawn=False)
        with FleetThread(config) as fleet:
            with ServeClient(fleet.address) as client:
                source = "u64 r(u8* ctx) { return 77; }"
                home = fleet.router.home_shard(source)
                fleet.kill_shard(home)
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if client.ping()["result"]["alive_shards"] == 1:
                        break
                    time.sleep(0.05)
                # with the home shard gone the ring overflows to the
                # survivor — the shared cache tree makes this correct
                response = client.request(payload("r", source),
                                          check=True)
                assert response["ok"]
                assert fleet.router.shard_for(source) != home

    def test_drain_shutdown_drops_nothing(self):
        config = FleetConfig(shards=2, max_batch=4, max_delay=0.01)
        with FleetThread(config) as fleet:
            with ServeClient(fleet.address) as client:
                pending = [payload(f"d{i}",
                                   f"u64 d{i}(u8* ctx) {{ "
                                   f"return {i} * 31; }}")
                           for i in range(10)]
                ids = [client.send(p) for p in pending]
                shutdown_id = client.send({"op": "shutdown"})
                responses = [client.recv() for _ in ids]
                ack = client.recv()
                # every admitted request resolved, in order, before the
                # shutdown ack; zero drops across the fleet
                assert [r["id"] for r in responses] == ids
                assert all(r["ok"] for r in responses), responses
                assert ack["id"] == shutdown_id and ack["ok"]
            fleet._thread.join(timeout=60)
            assert not fleet._thread.is_alive()

    def test_request_stop_drains_even_with_held_connection(self):
        """Regression: a client that keeps its connection open after
        the drain must not wedge shutdown.  From Python 3.12,
        ``Server.wait_closed`` also waits for every accepted transport
        to detach, so awaiting it before connection teardown deadlocks
        against exactly this client."""
        config = FleetConfig(shards=2, max_batch=4, max_delay=0.01)
        with FleetThread(config) as fleet:
            client = ServeClient(fleet.address)
            try:
                pending = [payload(f"h{i}",
                                   f"u64 h{i}(u8* ctx) {{ "
                                   f"return {i} + 77; }}")
                           for i in range(6)]
                ids = [client.send(p) for p in pending]
                # the SIGTERM-handler path: stop arrives from outside
                # the protocol while the client holds its socket open
                fleet.router.request_stop(drain=True)
                responses = [client.recv() for _ in ids]
                assert [r["id"] for r in responses] == ids
                assert all(r["ok"] for r in responses), responses
                # the fleet must close the connection out from under
                # us (EOF), not wait for us to hang up first
                assert client._rfile.readline() == b""
            finally:
                client.close()
            fleet._thread.join(timeout=60)
            assert not fleet._thread.is_alive()
            # stop() captured the full fleet view before shard teardown
            snapshot = fleet.router.final_snapshot
            assert snapshot is not None
            assert snapshot["fleet"]["shards"] == 2
            assert [s["alive"] for s in snapshot["shards"]] == [True, True]


# ===================================== cross-shard cache contention (S2)
class TestCrossShardContention:
    def test_ttl_eviction_races_never_tear_entries(self):
        """Two shard daemons sweep one cache tree on a tight TTL while
        clients keep re-requesting: no torn entries, no read errors,
        and the warm-hit ratio recovers once traffic re-stores the
        expired keys."""
        config = FleetConfig(shards=2, max_batch=8, max_delay=0.005,
                             cache_ttl=0.3, sweep_interval=0.1)
        with FleetThread(config) as fleet:
            with ServeClient(fleet.address) as client:
                batch = [payload(name, source)
                         for name, source in SOURCES]
                for _round in range(3):
                    responses = client.compile_pipelined(batch * 2)
                    assert all(r["ok"] for r in responses)
                    time.sleep(0.45)  # let the TTL + sweeps bite
                # immediately repeat twice: the first re-stores, the
                # second must be served warm again
                responses = client.compile_pipelined(batch)
                assert all(r["ok"] for r in responses)
                warm = client.compile_pipelined(batch)
                assert all(r["ok"] for r in warm)
                assert all(r["result"]["cached"] for r in warm)
                snapshot = client.stats()
                assert snapshot["fleet"]["cache"]["read_errors"] == 0
                assert snapshot["fleet"]["cache"]["expired"] > 0
            scan = scan_cache_tree(config.cache_dir)
            assert scan["torn"] == 0
