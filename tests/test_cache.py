"""Tests for the content-addressed compilation cache (repro.cache).

The key must cover everything that can change compiled output; the
store must hand back private copies; disk entries must survive process
(here: instance) boundaries; and a cached compile must be bit-identical
to a fresh one.
"""

import dataclasses

import pytest

from repro import compile_bpf, ir
from repro.cache import (
    CacheStats,
    CompilationCache,
    canonical_text,
    compose_key,
    kernel_fingerprint,
)
from repro.core import MerlinPipeline
from repro.isa import ProgramType
from repro.verifier import KERNELS

SOURCE = """
u64 f(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    u32 b = (u32)a * 5;
    u64 c = (u64)b;
    return c + a;
}
"""

OTHER_SOURCE = """
u64 g(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    return a ^ 3;
}
"""


def build(source=SOURCE, entry="f"):
    module = compile_bpf(source)
    return module.get(entry), module


def make_key(func, module, **overrides):
    base = dict(enabled=frozenset({"dao", "cc", "po"}),
                kernel=KERNELS["6.5"], prog_type=ProgramType.TRACEPOINT,
                mcpu="v2", ctx_size=64, verify_after=False)
    base.update(overrides)
    return CompilationCache().key_for_function(func, module, **base)


class TestKeyComposition:
    def test_same_inputs_same_key(self):
        func, module = build()
        assert make_key(func, module) == make_key(func, module)

    def test_identical_text_same_key_across_parses(self):
        # content-addressed: two separately parsed copies of the same
        # source share an entry
        f1, m1 = build()
        f2, m2 = build()
        assert make_key(f1, m1) == make_key(f2, m2)

    def test_different_source_different_key(self):
        f1, m1 = build()
        f2, m2 = build(OTHER_SOURCE, "g")
        assert make_key(f1, m1) != make_key(f2, m2)

    @pytest.mark.parametrize("override", [
        dict(enabled=frozenset({"dao"})),
        dict(kernel=KERNELS["4.15"]),
        dict(prog_type=ProgramType.XDP),
        dict(mcpu="v3"),
        dict(ctx_size=24),
        dict(verify_after=True),
        dict(validate=True),
    ], ids=["enabled", "kernel", "prog_type", "mcpu", "ctx_size",
            "verify_after", "validate"])
    def test_each_config_field_invalidates(self, override):
        func, module = build()
        assert make_key(func, module) != make_key(func, module, **override)

    def test_enabled_order_does_not_matter(self):
        func, module = build()
        ir_text = canonical_text(func, module)
        k1 = compose_key(ir_text, ["po", "cc", "dao"], KERNELS["6.5"])
        k2 = compose_key(ir_text, ["dao", "po", "cc"], KERNELS["6.5"])
        assert k1 == k2

    def test_canonical_text_records_entry_point(self):
        func, module = build()
        assert f"entry @{func.name}" in canonical_text(func, module)
        # without a module only the function's own IR is rendered
        assert canonical_text(func) == ir.print_function(func)

    def test_kernel_fingerprint_covers_every_field(self):
        fp = kernel_fingerprint(KERNELS["6.5"])
        for f in dataclasses.fields(KERNELS["6.5"]):
            assert f"{f.name}=" in fp

    def test_key_is_hex_sha256(self):
        func, module = build()
        key = make_key(func, module)
        assert len(key) == 64
        assert all(c in "0123456789abcdef" for c in key)

    def test_schema_version_feeds_the_key(self):
        func, module = build()
        ir_text = canonical_text(func, module)
        k1 = compose_key(ir_text, [], KERNELS["6.5"])
        import repro.cache.keys as keys_mod

        old = keys_mod.SCHEMA_VERSION
        try:
            keys_mod.SCHEMA_VERSION = old + 1
            k2 = compose_key(ir_text, [], KERNELS["6.5"])
        finally:
            keys_mod.SCHEMA_VERSION = old
        assert k1 != k2


def compile_with(cache, source=SOURCE, entry="f"):
    func, module = build(source, entry)
    pipeline = MerlinPipeline()
    return pipeline.compile(func, module, prog_type=ProgramType.TRACEPOINT,
                            ctx_size=64, cache=cache)


class TestStore:
    def test_memory_hit(self):
        cache = CompilationCache()
        prog1, rep1 = compile_with(cache)
        assert cache.stats.misses == 1 and cache.stats.stores == 1
        prog2, rep2 = compile_with(cache)
        assert cache.stats.hits == 1 and cache.stats.memory_hits == 1
        assert prog2.insns == prog1.insns
        assert rep1.cached is False
        assert rep2.cached is True

    def test_cached_bytecode_identical_to_fresh(self):
        cache = CompilationCache()
        cached_prog, _ = compile_with(cache)
        cached_prog, _ = compile_with(cache)  # second run: from cache
        fresh_prog, _ = compile_with(None)
        assert cached_prog.insns == fresh_prog.insns
        assert cached_prog.mcpu == fresh_prog.mcpu

    def test_get_returns_private_copy(self):
        cache = CompilationCache()
        compile_with(cache)
        prog_a, _ = compile_with(cache)
        prog_a.insns.clear()  # caller mutates its copy...
        prog_b, _ = compile_with(cache)
        assert prog_b.insns  # ...without corrupting the store

    def test_disk_persistence_across_instances(self, tmp_path):
        first = CompilationCache(directory=str(tmp_path))
        compile_with(first)
        assert first.stats.stores == 1
        # a brand-new instance (think: another worker process) hits disk
        second = CompilationCache(directory=str(tmp_path))
        prog, rep = compile_with(second)
        assert second.stats.disk_hits == 1
        assert rep.cached is True

    def test_disk_layout_is_sharded(self, tmp_path):
        cache = CompilationCache(directory=str(tmp_path))
        compile_with(cache)
        pkls = list(tmp_path.glob("*/*.pkl"))
        assert len(pkls) == 1
        assert pkls[0].parent.name == pkls[0].stem[:2]

    def test_eviction_counter_and_disk_recovery(self, tmp_path):
        cache = CompilationCache(directory=str(tmp_path),
                                 max_memory_entries=1)
        compile_with(cache)
        compile_with(cache, OTHER_SOURCE, "g")  # evicts the first entry
        assert cache.stats.evictions == 1
        assert len(cache) == 1
        # the evicted entry is still served — from disk
        _, rep = compile_with(cache)
        assert rep.cached is True
        assert cache.stats.disk_hits == 1

    def test_memory_only_eviction_recompiles(self):
        cache = CompilationCache(max_memory_entries=1)
        compile_with(cache)
        compile_with(cache, OTHER_SOURCE, "g")
        _, rep = compile_with(cache)  # no disk layer to fall back on
        assert rep.cached is False
        assert cache.stats.misses == 3

    def test_contains_len_clear(self, tmp_path):
        cache = CompilationCache(directory=str(tmp_path))
        func, module = build()
        key = make_key(func, module)
        assert key not in cache
        _, rep = compile_with(cache)
        assert len(cache) == 1
        stored_key = next(iter(cache._memory))
        assert stored_key in cache
        cache.clear_memory()
        assert len(cache) == 0
        assert stored_key in cache  # disk copy survives clear_memory

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(ValueError):
            CompilationCache(max_memory_entries=0)

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = CompilationCache(directory=str(tmp_path))
        compile_with(cache)
        pkl = next(tmp_path.glob("*/*.pkl"))
        pkl.write_bytes(b"not a pickle")
        fresh = CompilationCache(directory=str(tmp_path))
        _, rep = compile_with(fresh)  # falls back to compiling
        assert rep.cached is False
        assert fresh.stats.misses == 1
        assert fresh.stats.read_errors == 1

    def test_write_failure_degrades_to_memory(self, tmp_path):
        """The store absorbs disk-write failures (a long-running
        service losing its cache dir must not start crashing)."""
        import shutil

        store_dir = tmp_path / "store"
        cache = CompilationCache(directory=str(store_dir))
        compile_with(cache)
        shutil.rmtree(store_dir)
        store_dir.write_text("a file where the directory was")
        _, rep = compile_with(cache, OTHER_SOURCE, "g")  # write fails
        assert rep.cached is False
        assert cache.stats.write_errors == 1
        # the memory tier still took the entry
        _, again = compile_with(cache, OTHER_SOURCE, "g")
        assert again.cached is True


class TestValidatedCompiles:
    """``compile(validate=...)`` participates in the cache: certificate
    verdicts are cached alongside the bytecode, and a validated hit is
    indistinguishable from a validated miss."""

    def compile_validated(self, cache, validate="report"):
        func, module = build()
        return MerlinPipeline().compile(
            func, module, prog_type=ProgramType.TRACEPOINT, ctx_size=64,
            cache=cache, validate=validate)

    def test_validated_compile_is_cached(self):
        cache = CompilationCache()
        self.compile_validated(cache)
        assert cache.stats.stores == 1
        _, rep = self.compile_validated(cache)
        assert rep.cached is True
        assert cache.stats.hits == 1

    def test_validated_hit_equals_validated_miss(self):
        cache = CompilationCache()
        miss_prog, miss_rep = self.compile_validated(cache)
        hit_prog, hit_rep = self.compile_validated(cache)
        assert hit_rep.cached is True
        assert hit_prog.insns == miss_prog.insns
        assert hit_rep.ni_optimized == miss_rep.ni_optimized
        # the certificate verdicts come back with the entry
        assert len(hit_rep.certificates) == len(miss_rep.certificates)
        assert [(c.pass_name, c.status) for c in hit_rep.certificates] \
            == [(c.pass_name, c.status) for c in miss_rep.certificates]
        assert all(c.certified for c in hit_rep.certificates)

    def test_strict_validate_hits_too(self):
        cache = CompilationCache()
        self.compile_validated(cache, validate=True)
        _, rep = self.compile_validated(cache, validate=True)
        assert rep.cached is True
        assert rep.certificates

    def test_plain_and_validated_entries_are_distinct(self):
        """A plain compile must not satisfy a validated request (its
        entry has no certificates) and vice versa."""
        cache = CompilationCache()
        _, plain = self.compile_validated(cache, validate=False)
        assert plain.certificates == []
        _, validated = self.compile_validated(cache)
        assert validated.cached is False       # key differs
        assert validated.certificates
        # both entries now live side by side
        assert cache.stats.stores == 2
        _, plain_again = self.compile_validated(cache, validate=False)
        assert plain_again.cached is True
        assert plain_again.certificates == []

    def test_validated_entry_persists_to_disk(self, tmp_path):
        first = CompilationCache(directory=str(tmp_path))
        _, cold = self.compile_validated(first)
        second = CompilationCache(directory=str(tmp_path))
        _, warm = self.compile_validated(second)
        assert warm.cached is True
        assert second.stats.disk_hits == 1
        assert [(c.pass_name, c.status) for c in warm.certificates] \
            == [(c.pass_name, c.status) for c in cold.certificates]


@pytest.mark.fuzz
class TestCachedEqualsFresh:
    """Property: for generated programs, a cache-served compile is
    byte-identical to a fresh one (insns, mcpu, and report NI)."""

    PROGRAMS = 200

    def test_cached_and_fresh_bytecode_identical(self):
        from repro.fuzz.generator import generate
        from repro.ir.parser import parse_function

        cache = CompilationCache()
        checked = 0
        seed = 0
        while checked < self.PROGRAMS:
            layer = ("source", "ir")[seed % 2]
            case = generate(layer, 90_000 + seed)
            seed += 1
            try:
                if case.layer == "source":
                    from repro.frontend import compile_source

                    module = compile_source(case.text)
                    func = module.get(case.name)
                else:
                    module = None
                    func = parse_function(case.text)
                pipeline = MerlinPipeline()
                fresh, fresh_rep = pipeline.compile(
                    func, module, prog_type=case.prog_type, mcpu=case.mcpu,
                    ctx_size=case.ctx_size)
                # first cached compile stores, second must hit
                pipeline.compile(func, module, prog_type=case.prog_type,
                                 mcpu=case.mcpu, ctx_size=case.ctx_size,
                                 cache=cache)
                cached, cached_rep = pipeline.compile(
                    func, module, prog_type=case.prog_type, mcpu=case.mcpu,
                    ctx_size=case.ctx_size, cache=cache)
            except Exception:
                continue  # generator output the toolchain rejects
            assert cached_rep.cached, f"{layer} seed {case.seed}: no hit"
            assert cached.insns == fresh.insns, \
                f"{layer} seed {case.seed}: cached bytecode differs"
            assert cached.mcpu == fresh.mcpu
            assert cached_rep.ni_optimized == fresh_rep.ni_optimized
            checked += 1
        assert cache.stats.hits >= self.PROGRAMS


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        assert CacheStats().hit_rate == 0.0

    def test_merge(self):
        a = CacheStats(hits=1, misses=2, stores=3, evictions=1,
                       memory_hits=1, disk_hits=0)
        b = CacheStats(hits=4, misses=1, stores=1, evictions=0,
                       memory_hits=2, disk_hits=2)
        a.merge(b)
        assert (a.hits, a.misses, a.stores, a.evictions,
                a.memory_hits, a.disk_hits) == (5, 3, 4, 1, 3, 2)

    def test_to_dict_round(self):
        d = CacheStats(hits=1, misses=2).to_dict()
        assert d["hits"] == 1 and d["misses"] == 2
        assert d["hit_rate"] == round(1 / 3, 4)


class TestWriteDegradation:
    """A filesystem going read-only mid-run (EROFS) must downgrade the
    store to memory-only: ``put``/``get`` never re-raise, reads keep
    being served, and after WRITE_DEGRADE_AFTER consecutive failures
    the disk is not even probed anymore."""

    def failing_replace(self, monkeypatch):
        import errno
        import os as real_os

        calls = {"n": 0}
        original = real_os.replace

        def replace(src, dst):
            calls["n"] += 1
            raise OSError(errno.EROFS, "read-only file system")

        monkeypatch.setattr("repro.cache.store.os.replace", replace)
        return calls, original

    def test_erofs_after_first_write_never_reraises(self, tmp_path,
                                                    monkeypatch):
        cache = CompilationCache(directory=str(tmp_path))
        prog1, _ = compile_with(cache)                  # lands on disk
        assert cache.stats.write_errors == 0

        calls, _ = self.failing_replace(monkeypatch)
        degrade_at = CompilationCache.WRITE_DEGRADE_AFTER
        for i in range(degrade_at + 2):                 # none of these raise
            compile_with(cache, OTHER_SOURCE.replace("g(", f"g{i}("),
                         f"g{i}")
        assert cache.write_degraded is True
        assert cache.stats.write_errors == degrade_at
        # sticky: once degraded the disk is no longer probed
        assert calls["n"] == degrade_at

        # get() still serves: memory first, then the pre-failure disk
        # entry after the LRU layer is dropped
        _, again = compile_with(cache)
        assert again.cached is True
        cache.clear_memory()
        _, from_disk = compile_with(cache)
        assert from_disk.cached is True
        assert cache.stats.disk_hits == 1
        # unknown keys stay plain misses, no exception
        assert cache.get("0" * 64) is None

    def test_one_success_rearms_the_failure_counter(self, tmp_path,
                                                    monkeypatch):
        import os as real_os

        cache = CompilationCache(directory=str(tmp_path))
        calls, original = self.failing_replace(monkeypatch)
        threshold = CompilationCache.WRITE_DEGRADE_AFTER
        for i in range(threshold - 1):                  # one short of sticky
            compile_with(cache, OTHER_SOURCE.replace("g(", f"h{i}("),
                         f"h{i}")
        assert cache.write_degraded is False
        monkeypatch.setattr("repro.cache.store.os.replace", original)
        compile_with(cache)                             # success re-arms
        assert cache._consecutive_write_errors == 0

        self.failing_replace(monkeypatch)
        for i in range(threshold - 1):                  # fresh budget again
            compile_with(cache, OTHER_SOURCE.replace("g(", f"k{i}("),
                         f"k{i}")
        assert cache.write_degraded is False
        assert cache.stats.write_errors == 2 * (threshold - 1)

    def test_unwritable_directory_from_birth_runs_memory_only(
            self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file where the cache dir should go")
        cache = CompilationCache(directory=str(blocker / "sub"))
        assert cache.write_degraded is True
        prog1, rep1 = compile_with(cache)               # memory tier only
        _, again = compile_with(cache)
        assert again.cached is True


class TestTtlAndSweep:
    """PR 10 retention policy: idle TTL, size budget, tombstones."""

    def _store_pair(self, cache, key="k"):
        func, module = build()
        program, report = MerlinPipeline().compile(
            func, module, prog_type=ProgramType.TRACEPOINT, ctx_size=64)
        cache.put(key, program, report)
        return program, report

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CompilationCache(ttl_seconds=0)
        with pytest.raises(ValueError):
            CompilationCache(ttl_seconds=-1.0)
        with pytest.raises(ValueError):
            CompilationCache(max_disk_bytes=-1)
        # both bounds unset keeps the PR-2 behavior: sweep is a no-op
        cache = CompilationCache(directory=str(tmp_path))
        self._store_pair(cache)
        result = cache.sweep()
        assert result["expired"] == result["evicted"] == 0
        assert result["scanned"] == 1

    def test_memory_entry_expires_after_idle_ttl(self):
        import time

        cache = CompilationCache(ttl_seconds=0.05)
        self._store_pair(cache)
        assert cache.get("k") is not None
        time.sleep(0.08)
        assert cache.get("k") is None
        assert cache.stats.expired == 1

    def test_touch_on_read_keeps_entry_alive(self):
        import time

        cache = CompilationCache(ttl_seconds=0.1)
        self._store_pair(cache)
        for _ in range(4):
            time.sleep(0.05)   # each read resets the idle clock
            assert cache.get("k") is not None
        assert cache.stats.expired == 0

    def test_disk_entry_expires_by_mtime(self, tmp_path):
        import os

        cache = CompilationCache(directory=str(tmp_path), ttl_seconds=60)
        self._store_pair(cache)
        path = cache._path("k")
        old = __import__("time").time() - 120
        os.utime(path, (old, old))
        cache.clear_memory()  # force the disk path
        assert cache.get("k") is None
        assert cache.stats.expired == 1
        assert not os.path.exists(path)  # lazily tombstoned on lookup

    def test_disk_hit_refreshes_mtime(self, tmp_path):
        import os
        import time

        cache = CompilationCache(directory=str(tmp_path), ttl_seconds=60)
        self._store_pair(cache)
        path = cache._path("k")
        old = time.time() - 50   # idle, but not expired
        os.utime(path, (old, old))
        cache.clear_memory()
        assert cache.get("k") is not None
        assert time.time() - os.stat(path).st_mtime < 10

    def test_sweep_expires_idle_entries(self, tmp_path):
        import time

        cache = CompilationCache(directory=str(tmp_path), ttl_seconds=30)
        for key in ("a", "b", "c"):
            self._store_pair(cache, key)
        result = cache.sweep(now=time.time() + 60)
        assert result["expired"] == 3
        assert result["scanned"] == 3
        assert result["bytes"] == 0
        assert result["bytes_freed"] > 0
        assert cache.stats.expired == 3

    def test_sweep_size_budget_evicts_lru_first(self, tmp_path):
        import os
        import time

        cache = CompilationCache(directory=str(tmp_path))
        for key in ("old", "mid", "new"):
            self._store_pair(cache, key)
        now = time.time()
        os.utime(cache._path("old"), (now - 300, now - 300))
        os.utime(cache._path("mid"), (now - 200, now - 200))
        sizes = {key: os.path.getsize(cache._path(key))
                 for key in ("old", "mid", "new")}
        budget = sizes["new"] + sizes["mid"]
        sweeper = CompilationCache(directory=str(tmp_path),
                                   max_disk_bytes=budget)
        result = sweeper.sweep()
        assert result["evicted"] == 1
        assert sweeper.stats.disk_evictions == 1
        assert not os.path.exists(cache._path("old"))   # LRU victim
        assert os.path.exists(cache._path("mid"))
        assert os.path.exists(cache._path("new"))
        assert result["bytes"] <= budget

    def test_tombstone_claims_exactly_once(self, tmp_path):
        import os

        cache = CompilationCache(directory=str(tmp_path))
        self._store_pair(cache)
        path = cache._path("k")
        other = CompilationCache(directory=str(tmp_path))
        assert cache._tombstone(path) is True
        assert other._tombstone(path) is False  # already claimed
        assert not os.path.exists(path)

    def test_sweep_reaps_abandoned_transients(self, tmp_path):
        import os
        import time

        cache = CompilationCache(directory=str(tmp_path))
        self._store_pair(cache)
        shard_dir = os.path.dirname(cache._path("k"))
        stale_tmp = os.path.join(shard_dir, ".tmp-dead.pkl")
        stale_tomb = os.path.join(shard_dir, "x.tomb-1-2")
        fresh_tmp = os.path.join(shard_dir, ".tmp-live.pkl")
        for stale in (stale_tmp, stale_tomb):
            with open(stale, "wb") as handle:
                handle.write(b"partial")
            old = time.time() - 600
            os.utime(stale, (old, old))
        with open(fresh_tmp, "wb") as handle:
            handle.write(b"in-flight write")
        result = cache.sweep()
        assert not os.path.exists(stale_tmp)    # abandoned: reaped
        assert not os.path.exists(stale_tomb)
        assert os.path.exists(fresh_tmp)        # mid-write: untouched
        assert result["scanned"] == 1           # transients are not entries

    def test_expired_disk_entry_falls_back_to_recompile(self, tmp_path):
        import os
        import time

        cache = CompilationCache(directory=str(tmp_path), ttl_seconds=60)
        pipeline = MerlinPipeline()
        func, module = build()
        cold = pipeline.compile(func, module,
                                prog_type=ProgramType.TRACEPOINT,
                                ctx_size=64, cache=cache)
        key = cold[1].cache_key
        old = time.time() - 120
        os.utime(cache._path(key), (old, old))
        cache.clear_memory()
        func, module = build()
        warm = pipeline.compile(func, module,
                                prog_type=ProgramType.TRACEPOINT,
                                ctx_size=64, cache=cache)
        assert warm[1].cached is False          # expired: really recompiled
        assert warm[0].insns == cold[0].insns   # and identically so
        assert cache.stats.expired == 1
