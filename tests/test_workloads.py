"""Workload tests: the 19 XDP programs, suite generators, traffic,
syscall models."""

import pytest

from repro.verifier import KERNELS, verify
from repro.vm import Machine
from repro.workloads import (
    ALL_XDP,
    BY_NAME,
    FORWARDING,
    LMBENCH_TESTS,
    POSTMARK,
    PROFILES,
    TrafficGenerator,
    build_packet,
    compile_suite_program,
    compile_workload,
    generate_suite,
    hook_matches,
)
from repro.workloads.packets import ETH_P_IP, IPPROTO_TCP


class TestXdpPrograms:
    def test_nineteen_workloads(self):
        assert len(ALL_XDP) == 19
        assert len({w.name for w in ALL_XDP}) == 19

    def test_forwarding_subset(self):
        assert set(FORWARDING) <= {w.name for w in ALL_XDP}
        assert len(FORWARDING) == 4

    def test_origins_cover_paper_sources(self):
        origins = {w.origin for w in ALL_XDP}
        assert {"kernel", "meta", "hxdp", "cilium"} <= origins

    @pytest.mark.parametrize("workload", ALL_XDP, ids=lambda w: w.name)
    def test_compiles_and_verifies(self, workload):
        program = compile_workload(workload)
        result = verify(program)
        assert result.ok, f"{workload.name}: {result.reason}"

    def test_balancer_is_largest(self):
        sizes = {w.name: compile_workload(w).ni for w in ALL_XDP}
        assert max(sizes, key=sizes.get) == "xdp-balancer"

    def test_xdp2_swaps_macs_and_txes(self):
        program = compile_workload(BY_NAME["xdp2"])
        machine = Machine(program)
        packet = bytes(range(6)) + bytes(range(16, 22)) + b"\x00\x08" + bytes(50)
        result = machine.run(packet=packet)
        assert result.xdp_action == 3  # XDP_TX
        data = bytes(machine.memory.regions["packet"].data[-64:])
        assert data[0:6] == bytes(range(16, 22))
        assert data[6:12] == bytes(range(6))

    def test_xdp1_counts_and_drops(self):
        program = compile_workload(BY_NAME["xdp1"])
        machine = Machine(program)
        result = machine.run(packet=build_packet(64))
        assert result.xdp_action == 1  # XDP_DROP

    def test_ddos_blacklist_drops(self):
        import struct

        program = compile_workload(BY_NAME["xdp_ddos_mitigator"])
        machine = Machine(program)
        bad_ip = 0x0A0000AA
        machine.maps["blacklist"].update(struct.pack("<I", bad_ip),
                                         struct.pack("<Q", 0))
        bad = build_packet(64, src_ip=bad_ip)
        good = build_packet(64, src_ip=0x0A0000BB)
        assert machine.run(packet=bad).xdp_action == 1
        assert machine.run(packet=good).xdp_action == 2

    def test_rate_limiter_eventually_drops(self):
        program = compile_workload(BY_NAME["xdp_rate_limiter"])
        machine = Machine(program)
        packet = build_packet(64, src_ip=0x01020304)
        actions = [machine.run(packet=packet).xdp_action
                   for _ in range(150)]
        assert 1 in actions  # tokens exhausted at some point
        assert actions[0] == 2  # first packet passes


class TestSuites:
    def test_profiles_match_table1(self):
        assert PROFILES["sysdig"].count == 168
        assert PROFILES["tetragon"].count == 186
        assert PROFILES["tracee"].count == 129
        assert PROFILES["sysdig"].largest == 33765
        assert PROFILES["tracee"].mcpu == "v2"

    def test_generation_deterministic(self):
        a = generate_suite("sysdig", seed=3, scale=0.05, count=4)
        b = generate_suite("sysdig", seed=3, scale=0.05, count=4)
        assert [p.source for p in a] == [p.source for p in b]

    def test_different_seeds_differ(self):
        a = generate_suite("sysdig", seed=3, scale=0.05, count=4)
        b = generate_suite("sysdig", seed=4, scale=0.05, count=4)
        assert [p.source for p in a] != [p.source for p in b]

    @pytest.mark.parametrize("suite", ["sysdig", "tetragon", "tracee"])
    def test_programs_compile_and_verify(self, suite):
        for prog in generate_suite(suite, seed=1, scale=0.04, count=3):
            base = compile_suite_program(prog)
            opt = compile_suite_program(prog, optimize=True)
            assert verify(base).ok
            assert verify(opt).ok
            assert opt.ni <= base.ni

    def test_sysdig_reduces_more_than_tracee(self):
        def avg_reduction(suite):
            reductions = []
            for prog in generate_suite(suite, seed=2, scale=0.15, count=5):
                base = compile_suite_program(prog)
                opt = compile_suite_program(prog, optimize=True)
                reductions.append(1 - opt.ni / base.ni)
            return sum(reductions) / len(reductions)

        assert avg_reduction("sysdig") > avg_reduction("tracee") + 0.15

    def test_size_targets_tracked(self):
        progs = generate_suite("tetragon", seed=1, scale=0.1, count=8)
        targets = [p.target_ni for p in progs]
        assert min(targets) < max(targets)

    def test_hooks_assigned(self):
        progs = generate_suite("tracee", seed=1, scale=0.05, count=4)
        assert all(p.hook for p in progs)


class TestPackets:
    def test_minimum_frame_size(self):
        assert len(build_packet(10)) == 60

    def test_eth_proto_position(self):
        packet = build_packet(64, eth_proto=ETH_P_IP)
        assert packet[12:14] == (0x0800).to_bytes(2, "little")

    def test_ip_fields(self):
        packet = build_packet(64, src_ip=0x01020304, dst_ip=0x0A0B0C0D,
                              proto=IPPROTO_TCP, ttl=9)
        assert packet[22] == 9
        assert packet[23] == IPPROTO_TCP
        assert packet[26:30] == (0x01020304).to_bytes(4, "little")
        assert packet[30:34] == (0x0A0B0C0D).to_bytes(4, "little")

    def test_ports(self):
        packet = build_packet(64, src_port=1111, dst_port=2222)
        assert packet[34:36] == (1111).to_bytes(2, "little")
        assert packet[36:38] == (2222).to_bytes(2, "little")

    def test_vlan_shifts_l3(self):
        packet = build_packet(64, vlan=100)
        assert packet[12:14] == (0x8100).to_bytes(2, "little")
        assert packet[16:18] == (0x0800).to_bytes(2, "little")

    def test_generator_deterministic(self):
        a = list(TrafficGenerator(seed=5).stream(10))
        b = list(TrafficGenerator(seed=5).stream(10))
        assert a == b

    def test_generator_flow_population(self):
        generator = TrafficGenerator(seed=5)
        assert len(generator.flows) == 256
        packets = list(generator.stream(50))
        assert len({p[26:34] for p in packets}) > 5  # multiple flows


class TestSyscalls:
    def test_lmbench_covers_table4(self):
        names = {t.name for t in LMBENCH_TESTS}
        assert "NULL call" in names
        assert "fork process" in names
        assert "pipe" in names
        assert len(LMBENCH_TESTS) == 15

    def test_vanilla_latencies_match_paper(self):
        by_name = {t.name: t for t in LMBENCH_TESTS}
        assert by_name["NULL call"].vanilla_us == 0.06
        assert by_name["exec process"].vanilla_us == 321.53

    def test_postmark_vanilla(self):
        assert POSTMARK.vanilla_seconds == 58.86

    def test_hook_matching(self):
        assert hook_matches("sys_enter_open", "sys_enter_open")
        assert hook_matches("sys_enter_open", "sys_enter")
        assert not hook_matches("sys_exit_open", "sys_enter")
        assert not hook_matches("sched_process_exit", "sys_enter")
