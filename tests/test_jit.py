"""JIT-engine tests: regions, deoptimization, and the code-object cache.

The jit engine must be observationally *bit-identical* to the
reference interpreter — return value, fault type and message, perf
counters, memory and map effects — including when it deoptimizes
mid-program and the fast engine finishes the run.  Every test here is
run with ``STRICT`` compilation: a codegen bug surfaces as a test
failure instead of a silent fallback to the fast engine.
"""

import dataclasses

import pytest

import repro.vm.engine.jit as jit_mod
from repro.fuzz import LAYERS, generate
from repro.fuzz.differential import check_engines, observe_baseline
from repro.isa import BpfProgram, Instruction, MapSpec, assemble
from repro.isa import opcodes as op
from repro.vm import Machine, VmFault
from repro.vm.engine.decode import _BUDGET_MSG, check_budget_fault
from repro.vm.engine.jit import (
    clear_jit_cache,
    compile_jit_program,
    jit_cache_size,
    jit_cache_stats,
)
from repro.vm.interpreter import ENGINES


@pytest.fixture(autouse=True)
def strict_compile(monkeypatch):
    """Fail loudly on codegen bugs and isolate the shared code cache."""
    monkeypatch.setattr(jit_mod, "STRICT", True)
    clear_jit_cache()
    yield
    clear_jit_cache()


def observe(program, ctx=b"", packet=None, engine="reference",
            max_insns=200_000):
    machine = Machine(program, engine=engine, max_insns=max_insns)
    try:
        result = machine.run(ctx=ctx, packet=packet)
    except Exception as exc:  # VmFault, HelperError, MapError...
        outcome = ("fault", f"{type(exc).__name__}: {exc}")
    else:
        outcome = ("ok", result.return_value)
    memory = {name: bytes(region.data)
              for name, region in machine.memory.regions.items()}
    return (outcome, dataclasses.astuple(machine.counters), memory), machine


def assert_all_engines(program, ctx=b"", packet=None, max_insns=200_000):
    """Reference, fast and jit must observe the exact same run; returns
    the observation plus the jit machine (for engine-stats asserts)."""
    baseline, _ = observe(program, ctx, packet, "reference", max_insns)
    jit_machine = None
    for engine in ENGINES:
        if engine == "reference":
            continue
        seen, machine = observe(program, ctx, packet, engine, max_insns)
        assert seen == baseline, f"{engine} diverged from reference"
        if engine == "jit":
            jit_machine = machine
    return baseline, jit_machine


def agree(asm, ctx=b"", packet=None, maps=None, ctx_size=64,
          max_insns=200_000):
    program = BpfProgram("t", assemble(asm), maps=maps or {},
                         ctx_size=ctx_size)
    return assert_all_engines(program, ctx, packet, max_insns)


LOOP = """\
r0 = 0
r1 = 20
loop:
r0 += r1
r1 -= 1
if r1 > 0 goto loop
exit"""

NESTED_LOOP = """\
r0 = 0
r6 = 5
outer:
r7 = 4
inner:
*(u64 *)(r10 - 8) = r0
r0 = *(u64 *)(r10 - 8)
r0 += r7
r7 -= 1
if r7 > 0 goto inner
r6 -= 1
if r6 > 0 goto outer
exit"""

TWO_MAPS = {
    "a": MapSpec("a", "hash", 8, 8, 16),
    "b": MapSpec("b", "hash", 8, 8, 16),
}

MAP_LOOP = """\
r0 = 0
r6 = 10
loop:
*(u64 *)(r10 - 8) = r6
*(u64 *)(r10 - 16) = r6
r1 = map_fd 1 ll
r2 = r10
r2 += -8
r3 = r10
r3 += -16
r4 = 0
call 2
*(u64 *)(r10 - 8) = r6
r1 = map_fd 1 ll
r2 = r10
r2 += -8
call 1
r6 -= 1
if r6 > 0 goto loop
exit"""


class TestJitIdentical:
    @pytest.mark.parametrize("asm", [
        LOOP,
        NESTED_LOOP,
        # stack traffic of every width, including a byte store/load
        ("r1 = 0x11223344\n*(u32 *)(r10 - 4) = r1\n"
         "r0 = *(u8 *)(r10 - 4)\nexit"),
        "*(u64 *)(r10 - 8) = 99\nr0 = *(u64 *)(r10 - 8)\nexit",
        # cache-line straddle: stack top - 4 crosses a 64-byte line
        "*(u64 *)(r10 - 4) = 99\nr0 = *(u64 *)(r10 - 4)\nexit",
        # same slot read twice, then through a moved base (dynamic site)
        ("r1 = r10\nr1 += -8\n*(u64 *)(r10 - 8) = 7\n"
         "r0 = *(u64 *)(r1 + 0)\nr2 = *(u64 *)(r10 - 8)\n"
         "r0 += r2\nexit"),
        # signed compares and 32-bit jumps in a loop
        ("r0 = 0\nr1 = -5\nloop:\nr1 += 1\nr0 += 1\n"
         "if r1 s< 0 goto loop\nexit"),
        ("r0 = 0\nw1 = 10\nloop:\nr0 += 1\nw1 -= 1\n"
         "if w1 != 0 goto loop\nexit"),
        # div/mod by zero inside a fused run
        "r0 = 10\nr1 = 0\nr0 /= r1\nr0 %= r1\nexit",
        # atomics, with and without fetch
        ("*(u64 *)(r10 - 8) = 10\nr1 = 5\n"
         "lock *(u64 *)(r10 - 8) += r1\n"
         "r1 = lock *(u64 *)(r10 - 8) += r1\n"
         "r0 = *(u64 *)(r10 - 8)\nexit"),
        # inline helpers: the clock must see batched cycles
        "call 5\nr6 = r0\ncall 5\nr0 -= r6\nexit",
        "call 7\ncall 8\ncall 14\ncall 15\ncall 6\nexit",
        # faults must land identically
        "r1 = 0x999 ll\nr0 = *(u64 *)(r1 + 0)\nexit",
        "r1 = 7\n*(u64 *)(r10 - 520) = r1\nexit",
        "call 9999\nexit",
    ])
    def test_identical(self, asm):
        agree(asm)

    def test_ctx_packet_identical(self):
        agree("r2 = *(u64 *)(r1 + 0)\nr0 = *(u8 *)(r2 + 2)\nexit",
              packet=b"\x01\x02\x03\x04")
        agree("r0 = *(u32 *)(r1 + 4)\nexit", ctx=bytes(range(16)))

    def test_map_loop_identical_and_guarded(self):
        _, machine = agree(MAP_LOOP, maps=TWO_MAPS)
        stats = machine.stats["jit"]
        assert stats["compiled"]
        assert stats["guarded_sites"] >= 2  # update + lookup sites
        assert stats["bails"]["guard"] == 0  # fd is the proven constant

    def test_map_delete_identical(self):
        asm = ("*(u64 *)(r10 - 8) = 3\nr1 = map_fd 2 ll\nr2 = r10\n"
               "r2 += -8\ncall 3\nexit")
        agree(asm, maps=TWO_MAPS)


class TestRegionFormation:
    def test_loop_becomes_structured_while(self):
        program = BpfProgram("t", assemble(LOOP))
        jp = compile_jit_program(program)
        assert jp.compiled and jp.fallback_reason == ""
        assert "while True:" in jp.source
        assert jp.n_blocks >= 2

    def test_straight_line_has_no_loop(self):
        program = BpfProgram("t", assemble("r0 = 1\nr0 += 2\nexit"))
        jp = compile_jit_program(program)
        assert jp.compiled
        assert "while True:" not in jp.source

    def test_stack_sites_share_one_memo_tuple(self):
        # NESTED_LOOP's inner block touches one stack slot twice: the
        # sites dedup to one and the run keeps a single memo entry
        program = BpfProgram("t", assemble(
            "*(u64 *)(r10 - 8) = 1\nr0 = *(u64 *)(r10 - 8)\n"
            "*(u64 *)(r10 - 8) = 2\nexit"))
        jp = compile_jit_program(program)
        assert jp.compiled
        assert jp.n_memops == 1


class TestCodeObjectCache:
    def test_content_keyed_sharing(self):
        a = BpfProgram("a", assemble(LOOP))
        b = BpfProgram("b", assemble(LOOP))  # same content, new name
        first = compile_jit_program(a)
        assert compile_jit_program(b) is first
        stats = jit_cache_stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_map_specs_change_the_key(self):
        insns = assemble("r1 = map_fd 1 ll\nr0 = 0\nexit")
        small = BpfProgram("s", list(insns),
                           maps={"m": MapSpec("m", "hash", 8, 8, 4)})
        large = BpfProgram("l", list(insns),
                           maps={"m": MapSpec("m", "hash", 8, 16, 4)})
        assert compile_jit_program(small) is not compile_jit_program(large)

    def test_machines_share_compiled_code(self):
        program = BpfProgram("t", assemble(LOOP))
        m1 = Machine(program, engine="jit")
        m2 = Machine(program, engine="jit")
        m1.run()
        m2.run()
        assert jit_cache_stats().misses == 1
        assert jit_cache_stats().hits >= 1
        assert m1.stats["jit_cache"]["misses"] == 1

    def test_capacity_eviction(self, monkeypatch):
        monkeypatch.setattr(jit_mod, "JIT_CACHE_CAPACITY", 2)
        for value in range(4):
            compile_jit_program(
                BpfProgram("t", assemble(f"r0 = {value}\nexit")))
        assert jit_cache_size() <= 2

    def test_clear_resets(self):
        compile_jit_program(BpfProgram("t", assemble("r0 = 0\nexit")))
        clear_jit_cache()
        assert jit_cache_size() == 0
        stats = jit_cache_stats()
        assert (stats.hits, stats.misses) == (0, 0)


class TestDeopt:
    def test_budget_bail_mid_loop(self):
        # Budget 12 leaves exactly 1 instruction when the loop body's
        # 2-instruction fused run is entered: the region-entry check
        # bails (it cannot execute the whole run) and the fast engine
        # must carry the run to the exact reference exhaustion slot.
        program = BpfProgram("t", assemble(LOOP))
        (outcome, counters, _), machine = assert_all_engines(
            program, max_insns=12)
        assert outcome == ("fault", f"VmFault: {_BUDGET_MSG}")
        assert counters[0] == 12
        stats = machine.stats["jit"]
        assert stats["bails"]["budget"] >= 1
        assert stats["deopt_runs"] >= 1

    def test_memory_bail_preserves_prefix(self):
        # first store commits, second faults during phase 1: the bail
        # must leave registers/memory for the fast replay to redo the
        # prefix for real, byte-identically with the reference
        asm = ("r1 = r10\nr2 = 1\n*(u64 *)(r1 - 8) = r2\n"
               "*(u64 *)(r1 - 600) = r2\nexit")
        (outcome, _, memory), machine = agree(asm)
        assert outcome[0] == "fault"
        assert memory["stack"][-8:] == (1).to_bytes(8, "little")
        stats = machine.stats["jit"]
        assert stats["bails"]["memory"] >= 1
        assert stats["deopt_runs"] >= 1

    def test_guard_failure_mid_loop_resumes_identically(self, monkeypatch):
        # Force an optimistic-wrong specialization: the analysis claims
        # map fd 2 at sites that really hold fd 1, so the run-time guard
        # fails on every iteration and the fast engine must finish each
        # run bit-identically.
        original = jit_mod._Emitter._map_fd_at

        def lying(self, body):
            return {pc: (2 if fd == 1 else fd)
                    for pc, fd in original(self, body).items()}

        monkeypatch.setattr(jit_mod._Emitter, "_map_fd_at", lying)
        _, machine = agree(MAP_LOOP, maps=TWO_MAPS)
        stats = machine.stats["jit"]
        assert stats["guarded_sites"] >= 2
        assert stats["bails"]["guard"] >= 1
        assert stats["deopt_runs"] >= 1

    def test_unknown_jump_op_bails_to_fast(self):
        # 0xe0 is not a defined jump op: the jit keeps the slot on the
        # slow path and the fault message must match the reference
        insns = [Instruction(op.BPF_ALU64 | op.BPF_MOV | op.BPF_K, dst=0),
                 Instruction(op.BPF_JMP | 0xE0, off=1),
                 Instruction(op.BPF_JMP | op.BPF_EXIT)]
        program = BpfProgram("t", insns)
        (outcome, _, _), machine = assert_all_engines(program)
        assert outcome[0] == "fault"
        assert machine.stats["jit"]["bails"]["other"] >= 1


class TestBudgetDrift:
    def test_every_expiry_slot_in_a_fused_run(self):
        # mid-region expiry: the batched accounting must report the
        # exact reference exhaustion slot for every possible budget
        asm = "r0 = 1\nr0 += 1\nr0 += 2\nr0 += 3\nr0 += 4\nexit"
        program = BpfProgram("t", assemble(asm))
        for budget in range(1, 6):
            (outcome, counters, _), _ = assert_all_engines(
                program, max_insns=budget)
            assert outcome[0] == "fault"
            assert counters[0] == budget

    def test_expiry_at_helper_and_atomic_segments(self):
        asm = ("call 7\n*(u64 *)(r10 - 8) = 1\nr1 = 2\n"
               "lock *(u64 *)(r10 - 8) += r1\ncall 7\nexit")
        program = BpfProgram("t", assemble(asm))
        for budget in range(1, 6):
            (outcome, counters, _), _ = assert_all_engines(
                program, max_insns=budget)
            assert outcome[0] == "fault"
            assert counters[0] == budget

    def test_mid_loop_expiry_counters_exact(self):
        program = BpfProgram("t", assemble(LOOP))
        for budget in (1, 2, 3, 7, 30, 50):
            (outcome, counters, _), _ = assert_all_engines(
                program, max_insns=budget)
            assert outcome[0] == "fault"
            assert counters[0] == budget

    def test_drift_assert_fires_on_mismatch(self):
        exhausted = VmFault(_BUDGET_MSG)
        check_budget_fault(exhausted, executed=100, max_insns=100)
        with pytest.raises(AssertionError):
            check_budget_fault(exhausted, executed=99, max_insns=100)
        # non-budget faults are not the drift check's business
        check_budget_fault(VmFault("unmapped access"), 5, 100)


class TestJitPropertySweep:
    @pytest.mark.parametrize("layer", LAYERS)
    @pytest.mark.parametrize("seed", [5, 77, 2024])
    def test_fuzz_corpus_certifies_jit(self, layer, seed):
        """Generated programs at every fuzz layer run bit-identically on
        the jit engine (STRICT: fallback would fail the test)."""
        case = generate(layer, seed)
        try:
            baseline = observe_baseline(case)
        except Exception:
            pytest.skip("generated program does not compile here")
        divergence = check_engines(case, baseline)
        assert divergence is None, divergence


class TestEngineSurface:
    def test_machine_stats_surface(self):
        machine = Machine(BpfProgram("t", assemble(LOOP)), engine="jit")
        machine.run()
        stats = machine.stats
        assert stats["engine"] == "jit"
        assert stats["jit"]["compiled"] is True
        assert "jit_cache" in stats

    def test_counters_mirror_after_deopt(self):
        machine = Machine(BpfProgram("t", assemble(LOOP)), engine="jit",
                          max_insns=13)
        with pytest.raises(VmFault):
            machine.run()
        assert (machine.counters.cache_references
                == machine.cache.stats.references)
        assert (machine.counters.branch_misses
                == machine.branch.stats.mispredictions)
