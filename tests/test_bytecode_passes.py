"""Tests for Merlin's bytecode-tier passes and the rewriting machinery."""

import pytest

from repro.core import (
    BytecodeAnalysis,
    CodeCompactionPass,
    PeepholePass,
    StoreImmediatePass,
    SuperwordMergePass,
    SymbolicProgram,
)
from repro.core.bytecode_passes.superword import merged_immediate
from repro.isa import BpfProgram, assemble, disassemble
from repro.isa import opcodes as op
from repro.vm import Machine


def program(asm: str, mcpu: str = "v3") -> BpfProgram:
    return BpfProgram("t", assemble(asm), mcpu=mcpu, ctx_size=64)


def run_value(prog: BpfProgram, ctx: bytes = b"\x00" * 64) -> int:
    return Machine(prog).run(ctx=ctx).return_value


class TestSymbolicProgram:
    def test_roundtrip_without_changes(self):
        prog = program("""
            r0 = 0
            if r0 == 0 goto out
            r0 = 1
        out:
            exit
        """)
        sym = SymbolicProgram.from_program(prog)
        assert sym.to_insns() == prog.insns

    def test_delete_fixes_forward_branch(self):
        prog = program("""
            r1 = 5
            if r1 == 5 goto out
            r1 = 6
            r1 = 7
        out:
            r0 = r1
            exit
        """)
        sym = SymbolicProgram.from_program(prog)
        sym.delete(2)  # delete "r1 = 6"
        rewritten = prog.copy(insns=sym.to_insns())
        assert run_value(rewritten) == 5

    def test_delete_branch_target_falls_to_next(self):
        prog = program("""
            r1 = 1
            if r1 == 1 goto tgt
            r0 = 0
            exit
        tgt:
            r0 = 42
            exit
        """)
        sym = SymbolicProgram.from_program(prog)
        # deleting the first insn at the target: branch lands on the next
        sym.delete(4)
        rewritten = prog.copy(insns=sym.to_insns())
        # target insn "r0 = 42" deleted: lands on exit with r0 unset=0 in VM
        assert run_value(rewritten) == 0

    def test_backward_branch_offsets(self):
        prog = program("""
            r1 = 0
        loop:
            r1 += 1
            if r1 < 5 goto loop
            r0 = r1
            exit
        """)
        sym = SymbolicProgram.from_program(prog)
        rewritten = prog.copy(insns=sym.to_insns())
        assert run_value(rewritten) == 5

    def test_ld_imm64_slot_accounting(self):
        prog = program("""
            r1 = 0x1122334455667788 ll
            if r1 != 0 goto out
            r0 = 0
            exit
        out:
            r0 = 1
            exit
        """)
        sym = SymbolicProgram.from_program(prog)
        assert run_value(prog.copy(insns=sym.to_insns())) == 1


class TestAnalysis:
    def test_dead_after(self):
        prog = program("""
            r1 = 5
            r2 = r1
            r0 = r2
            exit
        """)
        analysis = BytecodeAnalysis(SymbolicProgram.from_program(prog))
        assert analysis.reg_dead_after(1, 1)  # r1 dead after the copy
        assert not analysis.reg_dead_after(1, 2)

    def test_live_across_branches(self):
        prog = program("""
            r1 = 5
            if r1 == 5 goto use
            r0 = 0
            exit
        use:
            r0 = r1
            exit
        """)
        analysis = BytecodeAnalysis(SymbolicProgram.from_program(prog))
        assert not analysis.reg_dead_after(0, 1)

    def test_branch_target_detection(self):
        prog = program("""
            r0 = 0
            if r0 == 0 goto t
            r0 = 1
        t:
            exit
        """)
        analysis = BytecodeAnalysis(SymbolicProgram.from_program(prog))
        assert analysis.is_branch_target(3)
        assert not analysis.is_branch_target(1)

    def test_straightline_rejects_spanning_target(self):
        prog = program("""
            r0 = 0
            if r0 == 0 goto t
            r1 = 1
        t:
            r2 = 2
            exit
        """)
        analysis = BytecodeAnalysis(SymbolicProgram.from_program(prog))
        assert not analysis.straightline(2, 3)
        assert analysis.straightline(3, 4)

    def test_dead_defs_include_self_moves(self):
        prog = program("r1 = r1\nr0 = 0\nexit")
        analysis = BytecodeAnalysis(SymbolicProgram.from_program(prog))
        assert 0 in analysis.dead_defs()

    def test_call_clobbers_not_dead(self):
        prog = program("""
            r1 = 1
            call 5
            r0 = r0
            r0 = 7
            exit
        """)
        analysis = BytecodeAnalysis(SymbolicProgram.from_program(prog))
        dead = analysis.dead_defs()
        assert 0 not in dead  # r1 feeds the call (conservatively live)


class TestStoreImmediate:
    def test_folds_fig4_pattern(self):
        prog = program("""
            r1 = 1
            *(u64 *)(r10 - 64) = r1
            r0 = *(u64 *)(r10 - 64)
            exit
        """)
        before = prog.ni
        rewrites = StoreImmediatePass().run(prog)
        assert rewrites >= 1
        assert prog.ni == before - 1
        assert any(i.is_store_imm for i in prog.insns)
        assert run_value(prog) == 1

    def test_no_fold_when_register_reused(self):
        prog = program("""
            r1 = 1
            *(u64 *)(r10 - 64) = r1
            r0 = r1
            exit
        """)
        StoreImmediatePass().run(prog)
        assert not any(i.is_store_imm for i in prog.insns)
        assert run_value(prog) == 1

    def test_no_fold_across_branch_target(self):
        prog = program("""
            r1 = 1
            if r1 == 1 goto st
            r1 = 2
        st:
            *(u64 *)(r10 - 64) = r1
            r0 = *(u64 *)(r10 - 64)
            exit
        """)
        StoreImmediatePass().run(prog)
        assert run_value(prog) == 1

    def test_dead_stack_store_removed(self):
        prog = program("""
            *(u32 *)(r10 - 4) = 0
            *(u32 *)(r10 - 4) = 1
            r0 = *(u32 *)(r10 - 4)
            exit
        """)
        before = prog.ni
        StoreImmediatePass().run(prog)
        assert prog.ni == before - 1
        assert run_value(prog) == 1

    def test_dead_store_kept_when_read_between(self):
        prog = program("""
            *(u32 *)(r10 - 4) = 7
            r2 = *(u32 *)(r10 - 4)
            *(u32 *)(r10 - 4) = 1
            r0 = r2
            exit
        """)
        before = prog.ni
        StoreImmediatePass().run(prog)
        assert run_value(prog) == 7

    def test_dead_store_kept_when_fp_escapes(self):
        prog = program("""
            *(u64 *)(r10 - 64) = 7
            r2 = r10
            r2 += -64
            *(u64 *)(r10 - 64) = 1
            r0 = *(u64 *)(r2 + 0)
            exit
        """)
        StoreImmediatePass().run(prog)
        assert run_value(prog) == 1  # stores preserved in order

    def test_removes_dead_defs(self):
        prog = program("""
            r3 = 99
            r0 = 0
            exit
        """)
        StoreImmediatePass().run(prog)
        assert prog.ni == 2


class TestSuperwordBytecode:
    def test_merges_fig5_pattern(self):
        prog = program("""
            *(u32 *)(r10 - 4) = 0
            *(u32 *)(r10 - 8) = 1
            r0 = *(u64 *)(r10 - 8)
            exit
        """)
        before = run_value(prog.copy())
        rewrites = SuperwordMergePass().run(prog)
        assert rewrites == 1
        stores = [i for i in prog.insns if i.is_store_imm]
        assert len(stores) == 1
        assert stores[0].size_bytes == 8
        assert stores[0].off == -8
        assert run_value(prog) == before == 1

    def test_merges_byte_pairs_up_to_u32(self):
        prog = program("""
            *(u8 *)(r10 - 4) = 1
            *(u8 *)(r10 - 3) = 2
            *(u8 *)(r10 - 2) = 3
            *(u8 *)(r10 - 1) = 4
            r0 = *(u32 *)(r10 - 4)
            exit
        """)
        expected = run_value(prog.copy())
        rewrites = SuperwordMergePass().run(prog)
        assert rewrites == 3  # two u8 merges, then one u16 merge
        assert run_value(prog) == expected

    def test_no_merge_when_misaligned(self):
        prog = program("""
            *(u32 *)(r10 - 12) = 1
            *(u32 *)(r10 - 8) = 2
            r0 = 0
            exit
        """)
        assert SuperwordMergePass().run(prog) == 0  # -12 not 8-aligned

    def test_no_merge_across_load(self):
        prog = program("""
            *(u32 *)(r10 - 8) = 1
            r2 = *(u32 *)(r10 - 8)
            *(u32 *)(r10 - 4) = 0
            r0 = r2
            exit
        """)
        assert SuperwordMergePass().run(prog) == 0

    def test_merged_immediate_bounds(self):
        assert merged_immediate(1, 0, 4) == 1
        assert merged_immediate(0, 1, 4) is None  # needs bit 32: no s32
        assert merged_immediate(0x34, 0x12, 1) == 0x1234
        assert merged_immediate(0xFFFF, 0x7FFF, 2) == 0x7FFFFFFF

    def test_merged_immediate_sign_extension_cases(self):
        # 4-byte merge producing a negative-looking pattern is encodable
        assert merged_immediate(0xFFFF, 0xFFFF, 2) == -1


class TestCodeCompaction:
    def test_rewrites_shift_pair_to_mov32(self):
        prog = program("""
            r1 = *(u64 *)(r1 + 0)
            r1 <<= 32
            r1 >>= 32
            r0 = r1
            exit
        """)
        ctx = (0x1122334455667788).to_bytes(8, "little") + bytes(56)
        expected = run_value(prog.copy(), ctx)
        rewrites = CodeCompactionPass(allow_alu32=True).run(prog)
        assert rewrites == 1
        text = disassemble(prog.insns)
        assert "w1 = w1" in text
        assert run_value(prog, ctx) == expected == 0x55667788

    def test_gated_by_alu32_support(self):
        prog = program("""
            r1 = 5
            r1 <<= 32
            r1 >>= 32
            r0 = r1
            exit
        """)
        assert CodeCompactionPass(allow_alu32=False).run(prog) == 0

    def test_requires_same_register(self):
        prog = program("""
            r1 = 5
            r2 = 6
            r1 <<= 32
            r2 >>= 32
            r0 = r1
            exit
        """)
        assert CodeCompactionPass(allow_alu32=True).run(prog) == 0

    def test_requires_shift_of_32(self):
        prog = program("""
            r1 = 5
            r1 <<= 16
            r1 >>= 16
            r0 = r1
            exit
        """)
        assert CodeCompactionPass(allow_alu32=True).run(prog) == 0

    def test_marks_program_v3(self):
        prog = program("""
            r1 = 5
            r1 <<= 32
            r1 >>= 32
            r0 = r1
            exit
        """, mcpu="v2")
        CodeCompactionPass(allow_alu32=True).run(prog)
        assert prog.mcpu == "v3"


class TestPeephole:
    FIG9 = """
        r8 = *(u64 *)(r1 + 0)
        r3 = 0xf0000000 ll
        r8 &= r3
        r8 >>= 28
        r0 = r8
        exit
    """

    def test_rewrites_fig9_masked_shift(self):
        prog = program(self.FIG9)
        ctx = (0xDEADBEEF12345678).to_bytes(8, "little") + bytes(56)
        expected = run_value(prog.copy(), ctx)
        before = prog.ni
        rewrites = PeepholePass().run(prog)
        assert rewrites == 1
        assert prog.ni == before - 2  # ld_imm64 took two slots
        text = disassemble(prog.insns)
        assert "<<= 32" in text and ">>= 60" in text
        assert run_value(prog, ctx) == expected

    def test_requires_mask_register_dead(self):
        prog = program("""
            r8 = *(u64 *)(r1 + 0)
            r3 = 0xf0000000 ll
            r8 &= r3
            r8 >>= 28
            r0 = r3
            exit
        """)
        assert PeepholePass().run(prog) == 0

    def test_requires_matching_shift(self):
        prog = program("""
            r8 = *(u64 *)(r1 + 0)
            r3 = 0xf0000000 ll
            r8 &= r3
            r8 >>= 24
            r0 = r8
            exit
        """)
        assert PeepholePass().run(prog) == 0

    def test_zero_shift_mask(self):
        prog = program("""
            r8 = *(u64 *)(r1 + 0)
            r3 = 0xffffffff ll
            r8 &= r3
            r8 >>= 0
            r0 = r8
            exit
        """)
        ctx = (0xAABBCCDD55667788).to_bytes(8, "little") + bytes(56)
        expected = run_value(prog.copy(), ctx)
        assert PeepholePass().run(prog) == 1
        assert run_value(prog, ctx) == expected == 0x55667788

    def test_removes_jump_to_next(self):
        prog = program("""
            r0 = 0
            goto next
        next:
            exit
        """)
        assert PeepholePass().run(prog) == 1
        assert prog.ni == 2

    def test_keeps_real_jump(self):
        prog = program("""
            r0 = 0
            goto out
            r0 = 1
        out:
            exit
        """)
        assert PeepholePass().run(prog) == 0

    def test_mask_register_reread_blocks_rewrite(self):
        # r4 observes the mask between the load and the AND: deleting
        # the ld_imm64 would change what r4 sees, so PO must bail
        prog = program("""
            r8 = *(u64 *)(r1 + 0)
            r3 = 0xf0000000 ll
            r4 = r3
            r8 &= r3
            r8 >>= 28
            r0 = r8
            exit
        """)
        ctx = (0xDEADBEEF12345678).to_bytes(8, "little") + bytes(56)
        expected = run_value(prog.copy(), ctx)
        assert PeepholePass().run(prog) == 0
        assert run_value(prog, ctx) == expected

    def test_call_in_lookback_window_blocks_rewrite(self):
        # a helper call between load and AND could clobber the mask
        # (r1-r5 are caller-saved); the backward walk must stop at it
        prog = program("""
            r8 = *(u64 *)(r1 + 0)
            r3 = 0xf0000000 ll
            call 7
            r8 &= r3
            r8 >>= 28
            r0 = r8
            exit
        """)
        assert PeepholePass().run(prog) == 0

    def test_branch_in_lookback_window_blocks_rewrite(self):
        # another path may reach the AND without executing the load, so
        # any control flow inside the window kills the match
        prog = program("""
            r8 = *(u64 *)(r1 + 0)
            r3 = 0xf0000000 ll
            if r8 == 0 goto merge
        merge:
            r8 &= r3
            r8 >>= 28
            r0 = r8
            exit
        """)
        assert PeepholePass().run(prog) == 0

    def test_mask_def_exactly_lookback_back_still_found(self):
        # the ld_imm64 sits exactly LOOKBACK live instructions before
        # the AND — the inclusive boundary of the backward walk
        fillers = ["r4 = 1", "r5 = 2", "r6 = 3", "r4 += 1",
                   "r5 += 2", "r6 += 3", "r4 -= 1"]
        assert len(fillers) == PeepholePass.LOOKBACK - 1
        prog = program("\n".join([
            "r8 = *(u64 *)(r1 + 0)",
            "r3 = 0xf0000000 ll",
            *fillers,
            "r8 &= r3",
            "r8 >>= 28",
            "r0 = r8",
            "exit",
        ]))
        ctx = (0xDEADBEEF12345678).to_bytes(8, "little") + bytes(56)
        expected = run_value(prog.copy(), ctx)
        assert PeepholePass().run(prog) == 1
        text = disassemble(prog.insns)
        assert "<<= 32" in text and ">>= 60" in text
        assert run_value(prog, ctx) == expected

    def test_mask_def_beyond_lookback_not_found(self):
        # one more filler pushes the load out of the window
        fillers = ["r4 = 1", "r5 = 2", "r6 = 3", "r4 += 1",
                   "r5 += 2", "r6 += 3", "r4 -= 1", "r5 -= 1"]
        assert len(fillers) == PeepholePass.LOOKBACK
        prog = program("\n".join([
            "r8 = *(u64 *)(r1 + 0)",
            "r3 = 0xf0000000 ll",
            *fillers,
            "r8 &= r3",
            "r8 >>= 28",
            "r0 = r8",
            "exit",
        ]))
        assert PeepholePass().run(prog) == 0

    def test_jump_resolving_past_end_is_kept(self):
        # deleting the jump's target (and everything after it) makes the
        # resolved target land one past the last instruction; the
        # redundant-jump scan must neither crash nor delete the jump
        prog = program("""
            r0 = 1
            goto out
            r0 = 2
        out:
            exit
        """)
        sym = SymbolicProgram.from_program(prog)
        sym.delete(3)  # the exit: "goto out" now resolves to end-of-program
        assert PeepholePass()._redundant_jumps(sym) == 0
        assert not sym.insns[1].deleted


class TestPassSafetyOnWorkloads:
    """Every bytecode pass must preserve the observable behaviour of
    every XDP workload."""

    @pytest.mark.parametrize("pass_factory", [
        StoreImmediatePass,
        SuperwordMergePass,
        lambda: CodeCompactionPass(allow_alu32=True),
        PeepholePass,
    ])
    def test_pass_preserves_workload_semantics(self, pass_factory):
        from repro.baselines.equivalence import equivalent, generate_tests
        from repro.workloads.xdp import ALL_XDP, compile_workload

        for workload in ALL_XDP[:8]:
            original = compile_workload(workload)
            rewritten = original.copy()
            pass_factory().run(rewritten)
            tests = generate_tests(original, count=6)
            assert equivalent(original, rewritten, tests), workload.name
