"""Bytecode-tier witness validation: real rewrites, tampered claims,
and the planted-bug self-test the validator must catch."""

import pytest

from repro.core import MerlinPipeline
from repro.core.bytecode_passes.symbolic import SymbolicProgram
from repro.isa import BpfProgram, assemble
from repro.isa import instruction as ins
from repro.tv import (
    RewriteWitness,
    TranslationValidationError,
    WitnessRecorder,
)
from repro.tv.regioncheck import validate_bytecode_witness

pytestmark = pytest.mark.tv


def _program(text: str, mcpu: str = "v2") -> BpfProgram:
    return BpfProgram("t", assemble(text), ctx_size=64, mcpu=mcpu)


def _certs(text: str, enabled, mcpu: str = "v2"):
    pipeline = MerlinPipeline(enabled=enabled)
    _optimized, report = pipeline.optimize_program(
        _program(text, mcpu), validate="report")
    return report.certificates


class TestRealRewritesCertify:
    def test_code_compaction_proved(self):
        certs = _certs("r0 <<= 32\nr0 >>= 32\nexit", {"cc"})
        assert [c.pass_name for c in certs] == ["cc"]
        assert certs[0].status == "proved"
        assert certs[0].method == "symbolic"

    def test_store_imm_fold_proved(self):
        certs = _certs(
            "r1 = 7\n*(u64 *)(r10 - 8) = r1\nr0 = 0\nexit", {"cpdce"})
        assert certs, "no witnesses emitted"
        assert all(c.certified for c in certs)
        assert any(c.kind == "region" for c in certs)

    def test_superword_merge_proved(self):
        certs = _certs(
            "*(u32 *)(r10 - 16) = 7\n*(u32 *)(r10 - 12) = 0\n"
            "r0 = *(u64 *)(r10 - 16)\nexit", {"slm"})
        assert [c.pass_name for c in certs] == ["slm"]
        assert certs[0].status == "proved"

    def test_peephole_masked_shift_proved(self):
        certs = _certs(
            "r3 = 0xffffff00 ll\nr8 &= r3\nr8 >>= 8\nr0 = r8\nexit", {"po"})
        assert [c.pass_name for c in certs] == ["peephole"]
        assert certs[0].status == "proved"
        assert certs[0].kind == "region"

    def test_jump_thread_structural(self):
        certs = _certs("r0 = 0\ngoto +0\nexit", {"po"})
        assert any(c.kind == "jump-thread" and c.status == "proved"
                   for c in certs)

    def test_dead_def_structural(self):
        certs = _certs("r5 = 9\nr0 = 0\nexit", {"cpdce"})
        assert any(c.kind == "dead-def" and c.status == "proved"
                   for c in certs)


class TestPlantedBugSelfTest:
    """The ISSUE's acceptance bug: SLM merging at base+1."""

    TEXT = ("*(u32 *)(r10 - 16) = 7\n"
            "*(u32 *)(r10 - 12) = 0\n"
            "r0 = *(u64 *)(r10 - 16)\n"
            "exit")

    def test_validator_catches_planted_offset_bug(self, monkeypatch):
        monkeypatch.setattr(
            "repro.core.bytecode_passes.superword.PLANTED_OFFSET_BUG", True)
        pipeline = MerlinPipeline(enabled={"slm"})
        with pytest.raises(TranslationValidationError) as excinfo:
            pipeline.optimize_program(_program(self.TEXT), validate=True)
        err = excinfo.value
        assert err.pass_name == "slm"
        assert err.tier == "bytecode"
        assert err.point == "insn 0 (slot 0)"
        # the counterexample names the faulting stack offset and shows
        # the value the buggy rewrite lost
        assert err.counterexample["location"] == "mem[r10-0x10]"
        assert err.counterexample["before"] != err.counterexample["after"]
        assert "slm" in str(err) and "insn 0" in str(err)

    def test_report_mode_records_refutation(self, monkeypatch):
        monkeypatch.setattr(
            "repro.core.bytecode_passes.superword.PLANTED_OFFSET_BUG", True)
        pipeline = MerlinPipeline(enabled={"slm"})
        _optimized, report = pipeline.optimize_program(
            _program(self.TEXT), validate="report")
        statuses = [c.status for c in report.certificates]
        assert "refuted" in statuses

    def test_same_program_certifies_without_bug(self):
        certs = _certs(self.TEXT, {"slm"})
        assert certs and all(c.certified for c in certs)


class TestTamperedWitnesses:
    """Hand-built witnesses with false claims must be refuted."""

    def _snapshot(self, text: str):
        sym = SymbolicProgram.from_program(_program(text))
        return tuple((i.insn, i.target, i.deleted) for i in sym.insns)

    def test_live_register_claimed_clobbered(self):
        snap = self._snapshot("r1 = 7\nr0 = r1\nexit")
        witness = RewriteWitness(
            pass_name="evil", tier="bytecode", kind="region",
            first=0, last=0,
            before_insns=[ins.mov64_imm(1, 7)], after_insns=[],
            clobbered=(1,), snapshot=snap)
        cert = validate_bytecode_witness(witness)
        assert cert.status == "refuted"
        assert "r1" in cert.detail

    def test_wrong_replacement_refuted_with_counterexample(self):
        snap = self._snapshot("r1 += 1\nexit")
        witness = RewriteWitness(
            pass_name="evil", tier="bytecode", kind="region",
            first=0, last=0,
            before_insns=[ins.alu64("add", 1, imm=1)],
            after_insns=[ins.alu64("add", 1, imm=2)],
            snapshot=snap)
        cert = validate_bytecode_witness(witness)
        assert cert.status == "refuted"
        assert cert.counterexample is not None

    def test_deleting_conditional_jump_refuted(self):
        snap = self._snapshot("if r1 == 0 goto +1\nr0 = 1\nexit")
        witness = RewriteWitness(
            pass_name="evil", tier="bytecode", kind="jump-thread",
            first=0, last=0, snapshot=snap)
        cert = validate_bytecode_witness(witness)
        assert cert.status == "refuted"

    def test_live_def_deletion_refuted(self):
        snap = self._snapshot("r1 = 7\nr0 = r1\nexit")
        witness = RewriteWitness(
            pass_name="evil", tier="bytecode", kind="dead-def",
            first=0, last=0, snapshot=snap)
        cert = validate_bytecode_witness(witness)
        assert cert.status == "refuted"


class TestRecorderPlumbing:
    def test_no_recorder_means_no_overhead_or_witnesses(self):
        pipeline = MerlinPipeline(enabled={"cc"})
        program = _program("r0 <<= 32\nr0 >>= 32\nexit")
        optimized, report = pipeline.optimize_program(program)
        assert report.certificates == []
        assert report.rewrites_of("cc") == 1

    def test_recorder_collects_witnesses(self):
        from repro.core.bytecode_passes.compaction import CodeCompactionPass

        program = _program("r0 <<= 32\nr0 >>= 32\nexit")
        rec = WitnessRecorder()
        cc = CodeCompactionPass()
        cc.recorder = rec
        cc.run(program)
        assert len(rec) == 1
        witness = rec.witnesses[0]
        assert witness.kind == "region"
        assert witness.pass_name == "cc"
        assert len(witness.before_insns) == 2
        assert len(witness.after_insns) == 1
