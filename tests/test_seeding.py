"""Tests for workload map seeding (the oracle/harness substrate)."""

import struct

import pytest

from repro.vm import Machine
from repro.workloads.packets import TrafficGenerator
from repro.workloads.seeding import seed_maps
from repro.workloads.xdp import BY_NAME, compile_workload


def machine_for(name):
    return Machine(compile_workload(BY_NAME[name]))


class TestSeeding:
    @staticmethod
    def _route_values(machine):
        table = machine.maps["route_table"]
        values = []
        for prefix in range(table.spec.max_entries):
            addr = table.lookup(struct.pack("<I", prefix))
            values.append(machine.memory.load(addr, 4))
        return values

    def test_route_table_filled(self):
        machine = machine_for("xdp_router_ipv4")
        seed_maps(machine, TrafficGenerator(seed=1))
        values = self._route_values(machine)
        assert all(v == 2 for v in values)  # coverage=1.0 fills everything

    def test_partial_coverage_leaves_misses(self):
        machine = machine_for("xdp_router_ipv4")
        seed_maps(machine, TrafficGenerator(seed=1), coverage=0.5)
        values = self._route_values(machine)
        routed = sum(v != 0 for v in values)
        # with 50% coverage both hit and miss (zero ifindex) paths exist
        assert 0 < routed < len(values)

    def test_vip_entries_match_generator_flows(self):
        machine = machine_for("xdp-balancer")
        generator = TrafficGenerator(seed=3)
        seed_maps(machine, generator)
        src, dst, sport, dport, proto = generator.flows[0]
        key = ((dst & 0xFFFFFFFF) << 32) | ((dport & 0xFFFF) << 8) | proto
        assert machine.maps["vip_map"].lookup(struct.pack("<Q", key)) != 0

    def test_conntrack_state_seeded(self):
        machine = machine_for("xdp-balancer")
        generator = TrafficGenerator(seed=3)
        seed_maps(machine, generator)
        assert len(machine.maps["conntrack"].entries) > 0

    def test_seeding_is_deterministic(self):
        a = machine_for("xdp-balancer")
        b = machine_for("xdp-balancer")
        seed_maps(a, TrafficGenerator(seed=3), coverage=0.7, seed=5)
        seed_maps(b, TrafficGenerator(seed=3), coverage=0.7, seed=5)
        assert set(a.maps["conntrack"].entries) == \
            set(b.maps["conntrack"].entries)

    def test_unknown_maps_untouched(self):
        machine = machine_for("xdp1")  # only has rxcnt
        seed_maps(machine, TrafficGenerator(seed=1))
        data = bytes(machine.maps["rxcnt"].region.data)
        assert data == bytes(len(data))  # untouched (all zero)

    def test_seeded_balancer_forwards(self):
        machine = machine_for("xdp-balancer")
        generator = TrafficGenerator(seed=42)
        seed_maps(machine, generator)
        actions = [machine.run(packet=p).xdp_action
                   for p in generator.stream(50)]
        assert actions.count(3) > 25  # most seeded traffic is TXed
