"""Unit tests for the verifier's abstract state lattice."""

import pytest
from hypothesis import given, strategies as st

from repro.verifier import RegState, RegType, SlotKind, StackSlot, Tnum, VerifierState

U64 = (1 << 64) - 1


class TestRegState:
    def test_const(self):
        reg = RegState.const(42)
        assert reg.is_const and reg.const_value == 42
        assert reg.umin == reg.umax == 42

    def test_const_wraps(self):
        reg = RegState.const(-1)
        assert reg.const_value == U64

    def test_scalar_bounds_from_tnum(self):
        reg = RegState.scalar(Tnum.range(10, 20))
        # tnum.range over-approximates to a power-of-two envelope
        assert reg.umin <= 10
        assert reg.umax >= 20

    def test_pointer_predicates(self):
        ptr = RegState.pointer(RegType.PTR_TO_STACK)
        assert ptr.is_pointer and not ptr.is_scalar

    def test_const_value_requires_const(self):
        with pytest.raises(ValueError):
            RegState.scalar().const_value


class TestSubsumption:
    def test_not_init_subsumes_everything(self):
        assert RegState.not_init().subsumes(RegState.const(5))
        assert RegState.not_init().subsumes(
            RegState.pointer(RegType.PTR_TO_PACKET))

    def test_wider_scalar_subsumes_narrower(self):
        wide = RegState.scalar(umin=0, umax=100)
        narrow = RegState.scalar(Tnum.range(10, 20), umin=10, umax=20)
        assert wide.subsumes(narrow)
        assert not narrow.subsumes(wide)

    def test_imprecise_scalar_subsumes_any_scalar(self):
        a = RegState.const(1)
        b = RegState.const(2)
        assert not a.subsumes(b, precise=True)
        assert a.subsumes(b, precise=False)

    def test_imprecision_does_not_cross_types(self):
        scalar = RegState.const(0)
        pointer = RegState.pointer(RegType.PTR_TO_STACK)
        assert not scalar.subsumes(pointer, precise=False)

    def test_packet_range_direction(self):
        short = RegState.pointer(RegType.PTR_TO_PACKET, pkt_range=14)
        long = RegState.pointer(RegType.PTR_TO_PACKET, pkt_range=64)
        # a state verified with LESS proven range covers one with more
        assert short.subsumes(long)
        assert not long.subsumes(short)

    def test_pointer_offsets_must_match(self):
        a = RegState.pointer(RegType.PTR_TO_STACK, off=-8)
        b = RegState.pointer(RegType.PTR_TO_STACK, off=-16)
        assert not a.subsumes(b)

    def test_map_value_requires_same_map(self):
        a = RegState.pointer(RegType.PTR_TO_MAP_VALUE, map_id=1, value_size=8)
        b = RegState.pointer(RegType.PTR_TO_MAP_VALUE, map_id=2, value_size=8)
        assert not a.subsumes(b)

    def test_or_null_requires_same_ref(self):
        a = RegState.pointer(RegType.PTR_TO_MAP_VALUE_OR_NULL, map_id=1,
                             ref_id=1)
        b = RegState.pointer(RegType.PTR_TO_MAP_VALUE_OR_NULL, map_id=1,
                             ref_id=2)
        assert not a.subsumes(b)
        assert a.subsumes(a)


class TestVerifierState:
    def test_initial_state(self):
        state = VerifierState()
        assert state.regs[1].type == RegType.PTR_TO_CTX
        assert state.regs[10].type == RegType.PTR_TO_STACK
        assert state.regs[0].type == RegType.NOT_INIT

    def test_copy_is_independent(self):
        state = VerifierState()
        clone = state.copy()
        clone.regs[0] = RegState.const(1)
        clone.stack[-8] = StackSlot(SlotKind.MISC)
        assert state.regs[0].type == RegType.NOT_INIT
        assert -8 not in state.stack

    def test_stack_subsumption(self):
        a = VerifierState()
        b = VerifierState()
        b.stack[-8] = StackSlot(SlotKind.MISC)
        # a (knows nothing about the slot) cannot claim to cover b?
        # invalid in a means a never relied on it: a subsumes b
        a.stack[-8] = StackSlot(SlotKind.INVALID)
        assert a.subsumes(b)
        # but a state with an initialized slot does NOT cover one without
        a.stack[-8] = StackSlot(SlotKind.MISC)
        del b.stack[-8]
        assert not a.subsumes(b)

    def test_spilled_scalar_subsumes_imprecisely(self):
        a = VerifierState()
        b = VerifierState()
        a.stack[-8] = StackSlot(SlotKind.SPILLED_PTR, RegState.const(1))
        b.stack[-8] = StackSlot(SlotKind.SPILLED_PTR, RegState.const(2))
        assert a.subsumes(b)

    def test_spilled_pointer_compares_precisely(self):
        a = VerifierState()
        b = VerifierState()
        a.stack[-8] = StackSlot(
            SlotKind.SPILLED_PTR,
            RegState.pointer(RegType.PTR_TO_PACKET, pkt_range=14))
        b.stack[-8] = StackSlot(
            SlotKind.SPILLED_PTR,
            RegState.pointer(RegType.PTR_TO_STACK))
        assert not a.subsumes(b)


@given(st.integers(0, U64))
def test_const_subsumes_itself(value):
    reg = RegState.const(value)
    assert reg.subsumes(reg)


@given(st.integers(0, U64), st.integers(0, U64), st.integers(0, U64))
def test_subsumption_transitivity_on_intervals(a, b, c):
    lo, mid, hi = sorted((a, b, c))
    outer = RegState.scalar(umin=lo, umax=hi)
    inner = RegState.scalar(umin=mid, umax=mid)
    if outer.subsumes(inner):
        assert outer.umin <= inner.umin <= inner.umax <= outer.umax
