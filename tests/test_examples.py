"""The fast examples must keep working (they are documentation)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "merlin:" in out
    assert "verify baseline: ok=True" in out
    assert "verify merlin: ok=True" in out
    assert "action 1" in out  # ssh dropped

def test_custom_pass(capsys):
    out = run_example("custom_pass.py", capsys)
    assert "semantics preserved" in out
    assert "still verifies: True" in out


def test_verifier_explorer(capsys):
    out = run_example("verifier_explorer.py", capsys)
    assert "invalid access to packet" in out
    assert "ok=True" in out
    assert "kernel 4.15" in out
