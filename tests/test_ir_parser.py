"""IR textual parser tests, including print/parse roundtrips."""

import pytest

from repro import ir
from repro.ir import (
    IRParseError,
    parse_function,
    parse_type,
    print_function,
    validate_function,
)
from repro.ir import instructions as iri


SIMPLE = """
define i64 @f(i8* %ctx) {
entry:
  %1 = gep i16* %ctx, i64 36
  %2 = load i16, i16* %1, align 1
  %3 = zext i16 %2 to i64
  ret i64 %3
}
"""


class TestParseType:
    def test_ints(self):
        assert parse_type("i64") is ir.I64
        assert parse_type("i8") is ir.I8

    def test_pointers(self):
        assert parse_type("i32*") == ir.pointer(ir.I32)
        assert parse_type("i8**") == ir.pointer(ir.pointer(ir.I8))

    def test_void(self):
        assert parse_type("void").is_void

    def test_bad(self):
        with pytest.raises(ValueError):
            parse_type("f64")


class TestParseFunction:
    def test_simple(self):
        func = parse_function(SIMPLE)
        validate_function(func)
        assert func.name == "f"
        assert func.return_type == ir.I64
        assert len(func.entry.instructions) == 4
        load = func.entry.instructions[1]
        assert isinstance(load, iri.Load)
        assert load.align == 1

    def test_control_flow_and_phi(self):
        func = parse_function("""
define i64 @g(i64 %x) {
entry:
  %1 = icmp ugt i64 %x, 10
  br i1 %1, label %big, label %small
big:
  %2 = add i64 %x, 1
  br label %join
small:
  %3 = add i64 %x, 2
  br label %join
join:
  %4 = phi i64 [ %2, %big ], [ %3, %small ]
  ret i64 %4
}
""")
        validate_function(func)
        assert len(func.blocks) == 4
        phi = func.blocks[-1].phis()[0]
        assert len(phi.incoming()) == 2

    def test_store_and_atomicrmw(self):
        func = parse_function("""
define void @h(i64* %p) {
entry:
  store i64 7, i64* %p, align 8
  %1 = atomicrmw add ptr %p, i64 3 monotonic, align 8
  ret void
}
""")
        validate_function(func)
        rmw = func.entry.instructions[1]
        assert isinstance(rmw, iri.AtomicRMW)
        assert rmw.rmw_op == "add" and rmw.align == 8

    def test_alloca_and_call(self):
        func = parse_function("""
define i64 @k() {
entry:
  %1 = alloca i64, align 8
  store i64 0, i64* %1, align 8
  %2 = call i64 @ktime_get_ns()
  %3 = load i64, i64* %1, align 8
  %4 = add i64 %2, %3
  ret i64 %4
}
""")
        validate_function(func)
        call = func.entry.instructions[2]
        assert isinstance(call, iri.Call)
        assert call.callee == "ktime_get_ns"

    def test_intra_block_use_before_def_fails_validation(self):
        """The parser accepts any textual order (forward references are
        legal SSA when dominance holds); *dominance* is the structural
        validator's job."""
        func = parse_function("""
define i64 @bad() {
entry:
  %1 = add i64 %2, 1
  %2 = add i64 1, 1
  ret i64 %1
}
""")
        with pytest.raises(Exception, match="before its definition"):
            validate_function(func)

    def test_forward_reference_across_blocks(self):
        """Branch folding can leave a dominating block printed *after*
        its use site (layout order != dominance order); the printed IR
        must still re-parse — the regression behind fuzz seeds 72/93/174
        on the certificate axis."""
        func = parse_function("""
define i64 @f() {
entry:
  br label %later
use:
  %2 = add i64 %1, 1
  ret i64 %2
later:
  %1 = add i64 40, 1
  br label %use
}
""")
        validate_function(func)
        add = func.blocks[1].instructions[0]
        assert isinstance(add, iri.BinaryOp)
        # the operand is the real defining instruction, not a placeholder
        assert add.operands[0] is func.blocks[2].instructions[0]
        # and the function round-trips
        assert print_function(parse_function(print_function(func))) == \
            print_function(func)

    def test_undefined_forward_reference_rejected(self):
        with pytest.raises(IRParseError, match="undefined value %nope"):
            parse_function("""
define i64 @bad() {
entry:
  %1 = add i64 %nope, 1
  ret i64 %1
}
""")

    def test_type_mismatched_forward_reference_rejected(self):
        with pytest.raises(IRParseError, match="used as i64"):
            parse_function("""
define i64 @bad() {
entry:
  br label %later
use:
  %2 = add i64 %1, 1
  ret i64 %2
later:
  %1 = icmp eq i64 1, 1
  br label %use
}
""")

    def test_unknown_instruction_rejected(self):
        with pytest.raises(IRParseError):
            parse_function("""
define i64 @bad() {
entry:
  %1 = frobnicate i64 1, 2
  ret i64 %1
}
""")


class TestRoundtrip:
    def _roundtrip(self, func):
        func.renumber()
        text = print_function(func)
        again = parse_function(text)
        validate_function(again)
        assert print_function(again) == text

    def test_simple_roundtrip(self):
        self._roundtrip(parse_function(SIMPLE))

    def test_frontend_output_roundtrips(self):
        from repro.frontend import compile_source

        module = compile_source("""
map array m(u32, u64, 4);

u64 f(u8* ctx) {
    u64 total = 0;
    for (u64 i = 0; i < 8; i += 1) {
        total += *(u8*)(ctx + i);
    }
    u32 key = 0;
    u64* v = map_lookup(m, &key);
    if (v != 0) { *v += total; }
    return total;
}
""")
        self._roundtrip(module.get("f"))

    def test_parsed_function_compiles_and_runs(self):
        from repro.codegen import compile_function
        from repro.isa import ProgramType
        from repro.vm import Machine

        func = parse_function(SIMPLE)
        program = compile_function(func, prog_type=ProgramType.TRACEPOINT,
                                   ctx_size=64)
        ctx = bytes(36) + (0xBEEF).to_bytes(2, "little") + bytes(26)
        assert Machine(program).run(ctx=ctx).return_value == 0xBEEF
