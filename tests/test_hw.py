"""Hardware model tests: cache, branch predictor, counters."""

import pytest

from repro.hw import BranchPredictor, CacheModel, PerfCounters


class TestCache:
    def test_first_access_misses(self):
        cache = CacheModel()
        latency = cache.access(0x1000, 8)
        assert cache.stats.misses == 1
        assert latency == cache.hit_latency + cache.miss_penalty

    def test_second_access_hits(self):
        cache = CacheModel()
        cache.access(0x1000, 8)
        latency = cache.access(0x1000, 8)
        assert cache.stats.misses == 1
        assert latency == cache.hit_latency

    def test_same_line_shares(self):
        cache = CacheModel(line_bytes=64)
        cache.access(0x1000, 4)
        cache.access(0x1010, 4)  # same 64-byte line
        assert cache.stats.misses == 1

    def test_straddling_access_touches_two_lines(self):
        cache = CacheModel(line_bytes=64)
        cache.access(0x103E, 8)  # crosses the line boundary
        assert cache.stats.references == 2
        assert cache.stats.misses == 2

    def test_lru_eviction(self):
        cache = CacheModel(size_bytes=2 * 64, line_bytes=64, ways=2)
        # one set, two ways: third distinct line evicts the LRU
        cache.access(0x0000, 1)
        cache.access(0x1000, 1)
        cache.access(0x0000, 1)  # touch: 0x1000 becomes LRU
        cache.access(0x2000, 1)  # evicts 0x1000
        cache.access(0x0000, 1)
        assert cache.stats.misses == 3
        cache.access(0x1000, 1)
        assert cache.stats.misses == 4

    def test_miss_rate(self):
        cache = CacheModel()
        cache.access(0, 1)
        cache.access(0, 1)
        assert cache.stats.miss_rate == 0.5

    def test_reset(self):
        cache = CacheModel()
        cache.access(0, 1)
        cache.reset()
        assert cache.stats.references == 0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheModel(size_bytes=1000, line_bytes=64, ways=8)


class TestBranchPredictor:
    def test_learns_always_taken(self):
        predictor = BranchPredictor()
        for _ in range(10):
            predictor.record(0x10, taken=True)
        assert predictor.stats.mispredictions <= 2

    def test_alternating_pattern_mispredicts(self):
        predictor = BranchPredictor()
        for i in range(100):
            predictor.record(0x10, taken=bool(i % 2))
        assert predictor.stats.miss_rate > 0.3

    def test_penalty_on_mispredict(self):
        predictor = BranchPredictor(mispredict_penalty=15)
        # initial counter is weakly-not-taken: a taken branch mispredicts
        assert predictor.record(0x10, taken=True) == 15

    def test_distinct_pcs_independent(self):
        predictor = BranchPredictor()
        for _ in range(8):
            predictor.record(1, taken=True)
            predictor.record(2, taken=False)
        before = predictor.stats.mispredictions
        predictor.record(1, taken=True)
        predictor.record(2, taken=False)
        assert predictor.stats.mispredictions == before


class TestCounters:
    def test_snapshot_delta(self):
        counters = PerfCounters(instructions=10, cycles=20)
        snap = counters.snapshot()
        counters.instructions += 5
        delta = counters.delta(snap)
        assert delta.instructions == 5
        assert delta.cycles == 0

    def test_add(self):
        a = PerfCounters(instructions=1, branch_misses=2)
        b = PerfCounters(instructions=3, branch_misses=4)
        a.add(b)
        assert a.instructions == 4
        assert a.branch_misses == 6

    def test_rates(self):
        counters = PerfCounters(cache_references=10, cache_misses=5,
                                branches=4, branch_misses=1,
                                instructions=100, cycles=50)
        assert counters.cache_miss_rate == 0.5
        assert counters.branch_miss_rate == 0.25
        assert counters.ipc == 2.0

    def test_zero_rates(self):
        counters = PerfCounters()
        assert counters.cache_miss_rate == 0.0
        assert counters.ipc == 0.0
