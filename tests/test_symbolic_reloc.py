"""SymbolicProgram relocation edge cases: insertion, deleted jump
targets, multi-slot instructions, and unresolvable branches."""

import pytest

from repro.core.bytecode_passes.symbolic import (
    RelocationError,
    SymbolicProgram,
)
from repro.isa import BpfProgram, assemble, disassemble
from repro.isa import instruction as ins
from repro.vm import Machine


def _sym(text: str) -> SymbolicProgram:
    return SymbolicProgram.from_program(
        BpfProgram("t", assemble(text), ctx_size=64))


def _run(insns) -> int:
    program = BpfProgram("t", list(insns), ctx_size=64)
    return Machine(program).run(ctx=bytes(64)).return_value


class TestInsertBefore:
    def test_insert_before_slot_zero(self):
        sym = _sym("r0 = 1\nexit")
        sym.insert_before(0, ins.mov64_imm(5, 9))
        out = sym.to_insns()
        assert out[0] == ins.mov64_imm(5, 9)
        assert _run(out) == 1

    def test_branch_over_insertion_point_keeps_target(self):
        # inserting at a branch target must NOT put the new instruction
        # on the branching path — it executes on fall-through only
        sym = _sym("r1 = 0\nif r1 == 0 goto +1\nr0 = 1\nr0 += 2\nexit")
        assert sym.insns[1].target == 3
        sym.insert_before(3, ins.alu64("add", 0, imm=40))
        out = sym.to_insns()
        # the taken branch skips both "r0 = 1" and the inserted add
        assert _run(out) == 2

    def test_insert_shifts_jump_targets(self):
        sym = _sym("goto +1\nr0 = 9\nexit")
        assert sym.insns[0].target == 2
        sym.insert_before(1, ins.mov64_imm(0, 5))
        assert sym.insns[0].target == 3
        assert _run(sym.to_insns()) == 0  # jump still skips both movs

    def test_insert_at_end_and_bounds(self):
        sym = _sym("r0 = 1\nexit")
        sym.insert_before(len(sym.insns), ins.mov64_imm(0, 2))
        assert len(sym.insns) == 3
        with pytest.raises(RelocationError):
            sym.insert_before(99, ins.mov64_imm(0, 0))
        with pytest.raises(RelocationError):
            sym.insert_before(-1, ins.mov64_imm(0, 0))

    def test_inserted_branch_target_adjusts(self):
        sym = _sym("r0 = 1\nr0 = 2\nexit")
        sym.insert_before(0, ins.jump("ja"), target=1)
        out = sym.to_insns()
        assert _run(out) == 2  # inserted jump skips the first mov


class TestDeletedTargets:
    def test_delete_jump_target_falls_through(self):
        sym = _sym("goto +1\nr0 = 7\nr0 = 3\nexit")
        assert sym.insns[0].target == 2
        sym.delete(2)
        out = sym.to_insns()
        # branch retargets to the next live instruction (the exit)
        assert _run(out) == 0

    def test_delete_everything_between_jump_and_end(self):
        sym = _sym("r0 = 5\ngoto +1\nr0 = 1\nexit")
        sym.delete(2)
        assert _run(sym.to_insns()) == 5

    def test_branch_targets_skip_deleted(self):
        sym = _sym("goto +1\nr0 = 7\nr0 = 3\nexit")
        sym.delete(2)
        assert sym.branch_targets() == {3}


class TestMultiSlotInstructions:
    def test_back_to_back_ld_imm64(self):
        # two 2-slot loads back to back: a branch over both must
        # relocate by slots, not indices
        sym = _sym(
            "if r1 == 0 goto +4\n"
            "r2 = 0x11223344 ll\n"
            "r3 = 0x55667788 ll\n"
            "r0 = 1\n"
            "exit")
        # +4 slots crosses two 2-slot loads: logical index is 3, not 5
        assert sym.insns[0].target == 3
        out = sym.to_insns()
        # round-trip through text must preserve the shape
        assert assemble(disassemble(out)) == out

    def test_delete_before_ld_imm64_relocates_slots(self):
        sym = _sym(
            "goto +3\n"
            "r2 = 0x11223344 ll\n"
            "r0 = 9\n"
            "exit")
        sym.delete(1)  # the branch skipped the 2-slot load anyway
        out = sym.to_insns()
        assert _run(out) == 0

    def test_branch_into_ld_imm64_second_slot_rejected(self):
        insns = [
            ins.jump("ja", off=1),  # lands on the ld_imm64's second slot
            ins.ld_imm64(2, 0x1122334455667788),
            ins.exit_(),
        ]
        program = BpfProgram("t", insns, ctx_size=64)
        with pytest.raises(RelocationError, match="inside an instruction"):
            SymbolicProgram.from_program(program)
