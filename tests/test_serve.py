"""Tests for the optimization-as-a-service daemon (repro.serve).

Covers the wire protocol (parse/encode/error codes), the daemon's
request/response semantics — most importantly that admission-batched
results are identical to sequential one-at-a-time compiles — response
ordering under pipelining and concurrency, error-response shapes, and
clean shutdown with in-flight requests drained.
"""

import threading

import pytest

from repro.frontend import compile_source
from repro.core import MerlinPipeline
from repro.isa import ProgramType, disassemble
from repro.serve import (
    DaemonThread,
    ServeClient,
    ServeConfig,
    ServeError,
    protocol,
)
from repro.serve.protocol import ProtocolError, parse_request

SOURCES = [
    ("fold", """
u64 fold(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    u64 b = 2 + 3;
    return a + b;
}
"""),
    ("mask", """
u64 mask(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    u64 b = *(u64*)(ctx + 8);
    return (a & 0xff) + (b >> 3);
}
"""),
    ("branchy", """
u64 branchy(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    u64 acc = 0;
    if (a > 7) { acc = acc + a; }
    if (a > 70) { acc = acc * 3; }
    return acc;
}
"""),
    ("narrow", """
u64 narrow(u8* ctx) {
    u32 a = *(u32*)(ctx + 0);
    u32 b = (u32)a * 5;
    return (u64)b;
}
"""),
]


def payload(name, source, **extra):
    out = {"op": "compile", "name": name, "source": source, "entry": name,
           "prog_type": "tracepoint", "ctx_size": 64}
    out.update(extra)
    return out


def reference_compile(name, source, mcpu="v2", ctx_size=64):
    """What the daemon must return: a direct in-process compile."""
    module = compile_source(source, name)
    return MerlinPipeline().compile(
        module.get(name), module, prog_type=ProgramType.TRACEPOINT,
        mcpu=mcpu, ctx_size=ctx_size)


@pytest.fixture(scope="module")
def daemon():
    config = ServeConfig(max_batch=8, max_delay=0.02)
    with DaemonThread(config) as handle:
        yield handle


@pytest.fixture
def client(daemon):
    handle = ServeClient(daemon.address)
    yield handle
    handle.close()


# ==================================================== protocol (no I/O)
class TestProtocol:
    def test_roundtrip_all_fields(self):
        line = protocol.encode({
            "id": 7, "op": "compile", "name": "p", "source": "u64 f...",
            "entry": "f", "prog_type": "xdp", "mcpu": "v3",
            "ctx_size": 128, "kernel": "5.19",
            "passes": ["cc", "po"], "validate": "report",
            "asm": True})
        request = parse_request(line)
        assert request.id == 7
        assert request.name == "p"
        assert request.entry == "f"
        assert request.prog_type is ProgramType.XDP
        assert request.mcpu == "v3"
        assert request.ctx_size == 128
        assert request.kernel == "5.19"
        assert request.passes == frozenset({"cc", "po"})
        assert request.validate == "report"
        assert request.asm is True

    def test_defaults(self):
        request = parse_request(b'{"op": "compile", "source": "x"}')
        assert request.id is None
        assert request.name == "anon"
        assert request.mcpu == "v2"
        assert request.validate is False
        assert request.passes is None

    def test_validate_op_defaults_to_report(self):
        request = parse_request(b'{"op": "validate", "source": "x"}')
        assert request.validate == "report"

    def test_control_ops_need_no_source(self):
        for op in ("ping", "stats", "shutdown"):
            assert parse_request(f'{{"op": "{op}"}}'.encode()).op == op

    @pytest.mark.parametrize("line", [
        b"not json at all",
        b"[1, 2, 3]",
        b"\xff\xfe bad utf8",
        b'{"op": "compile", "source": ',
    ])
    def test_bad_json(self, line):
        with pytest.raises(ProtocolError) as info:
            parse_request(line)
        assert info.value.code == "bad-json"

    @pytest.mark.parametrize("obj", [
        {"source": "x"},                                    # missing op
        {"op": "compile"},                                  # missing source
        {"op": "compile", "source": "   "},                 # blank source
        {"op": "compile", "source": "x", "mcpu": "v9"},
        {"op": "compile", "source": "x", "prog_type": "nope"},
        {"op": "compile", "source": "x", "ctx_size": -1},
        {"op": "compile", "source": "x", "ctx_size": True},
        {"op": "compile", "source": "x", "kernel": "2.4"},
        {"op": "compile", "source": "x", "passes": "all"},
        {"op": "compile", "source": "x", "passes": ["bogus_pass"]},
        {"op": "compile", "source": "x", "validate": "maybe"},
        {"op": "compile", "source": "x", "asm": "yes"},
        {"op": "compile", "source": "x", "name": 3},
    ])
    def test_bad_request(self, obj):
        with pytest.raises(ProtocolError) as info:
            parse_request(protocol.encode(obj))
        assert info.value.code == "bad-request"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(b'{"op": "transmogrify"}')
        assert info.value.code == "unknown-op"

    def test_oversized_source(self):
        big = "x" * (protocol.MAX_SOURCE_BYTES + 1)
        with pytest.raises(ProtocolError) as info:
            parse_request(protocol.encode({"op": "compile", "source": big}))
        assert info.value.code == "oversized"

    def test_error_id_preserved(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(b'{"id": 42, "op": "compile"}')
        assert info.value.request_id == 42
        response = protocol.error_from(info.value)
        assert response == {"id": 42, "ok": False,
                            "error": {"code": "bad-request",
                                      "message": info.value.message}}

    def test_config_key_groups_pipeline_config(self):
        base = parse_request(protocol.encode(
            {"op": "compile", "source": "x"}))
        same = parse_request(protocol.encode(
            {"op": "compile", "source": "y", "mcpu": "v3",
             "ctx_size": 32}))
        assert base.config_key == same.config_key  # mcpu/ctx don't split
        other_kernel = parse_request(protocol.encode(
            {"op": "compile", "source": "x", "kernel": "4.15"}))
        assert other_kernel.config_key != base.config_key
        report = parse_request(protocol.encode(
            {"op": "compile", "source": "x", "validate": "report"}))
        strict = parse_request(protocol.encode(
            {"op": "compile", "source": "x", "validate": True}))
        # True and "report" have different failure semantics: never
        # batch them into one compile_many call
        assert report.config_key != strict.config_key


# ================================================== daemon round trips
class TestRoundTrip:
    def test_ping(self, client):
        response = client.ping()
        assert response["ok"] is True
        assert response["result"]["pong"] is True
        assert response["result"]["protocol_version"] == \
            protocol.PROTOCOL_VERSION

    def test_compile_matches_local_pipeline(self, client):
        name, source = SOURCES[0]
        program, report = reference_compile(name, source)
        response = client.compile(source, name=name, entry=name,
                                  prog_type="tracepoint", asm=True)
        assert response["ok"] is True
        result = response["result"]
        assert result["name"] == name
        assert result["ni_original"] == report.ni_original
        assert result["ni_optimized"] == report.ni_optimized
        assert result["insns"] == program.ni
        assert result["asm"] == disassemble(program.insns)

    def test_repeat_is_cached(self, client):
        name, source = SOURCES[1]
        first = client.compile(source, name=name, entry=name,
                               prog_type="tracepoint")["result"]
        second = client.compile(source, name=name, entry=name,
                                prog_type="tracepoint")["result"]
        assert second["cached"] is True
        assert second["ni_optimized"] == first["ni_optimized"]

    def test_validate_reports_certificates(self, client):
        name, source = SOURCES[2]
        response = client.compile(source, name=name, entry=name,
                                  prog_type="tracepoint",
                                  validate="report")
        certs = response["result"]["certificates"]
        assert certs["applications"] >= 1
        assert certs["certified"] is True
        assert sum(certs["by_status"].values()) == certs["applications"]

    def test_stats_endpoint_shape(self, client):
        client.ping()
        stats = client.stats()
        for section in ("requests", "connections", "queue", "batches",
                        "throughput", "latency", "cache", "config"):
            assert section in stats, section
        assert stats["requests"]["received"] >= 1
        assert stats["config"]["protocol_version"] == \
            protocol.PROTOCOL_VERSION
        assert 0.0 <= stats["cache"]["hit_rate"] <= 1.0

    def test_tcp_transport(self):
        config = ServeConfig(host="127.0.0.1", port=0, max_delay=0.005)
        with DaemonThread(config) as handle:
            kind, host, port = handle.address
            assert kind == "tcp"
            with ServeClient(("tcp", host, port)) as client:
                assert client.ping()["ok"] is True


# ============================================ admission-batch semantics
class TestBatchingSemantics:
    def test_batched_equals_sequential(self):
        """The core contract: requests admitted into one batch return
        byte-identical results to one-at-a-time compiles."""
        config = ServeConfig(max_batch=len(SOURCES), max_delay=0.25)
        with DaemonThread(config) as handle:
            with ServeClient(handle.address) as client:
                batched = client.compile_pipelined(
                    [payload(n, s, asm=True) for n, s in SOURCES])
            stats = handle.daemon.snapshot()
        # the generous linger really did coalesce the window ...
        assert stats["batches"]["max_size"] > 1
        # ... and every response matches the local reference compile
        for (name, source), response in zip(SOURCES, batched):
            assert response["ok"], response
            program, report = reference_compile(name, source)
            result = response["result"]
            assert result["ni_original"] == report.ni_original
            assert result["ni_optimized"] == report.ni_optimized
            assert result["asm"] == disassemble(program.insns)

    def test_mixed_configs_in_one_window(self):
        """One admission window holding different pipeline configs is
        split into per-config compile_many groups, not mis-batched."""
        config = ServeConfig(max_batch=8, max_delay=0.25)
        requests = [
            payload("fold", SOURCES[0][1], kernel="6.5", asm=True),
            payload("fold", SOURCES[0][1], kernel="4.15", asm=True),
            payload("mask", SOURCES[1][1], kernel="6.5", asm=True),
        ]
        with DaemonThread(config) as handle:
            with ServeClient(handle.address) as client:
                responses = client.compile_pipelined(requests)
        assert all(r["ok"] for r in responses)
        # 4.15 lacks bounded loops/ALU32 support: the old-kernel result
        # must come from the old-kernel pipeline, not the 6.5 batch
        from repro.verifier import KERNELS

        module = compile_source(SOURCES[0][1], "fold")
        old, _ = MerlinPipeline(kernel=KERNELS["4.15"]).compile(
            module.get("fold"), module,
            prog_type=ProgramType.TRACEPOINT, ctx_size=64)
        assert responses[1]["result"]["asm"] == disassemble(old.insns)
        new, _ = reference_compile("fold", SOURCES[0][1])
        assert responses[0]["result"]["asm"] == disassemble(new.insns)

    def test_batch_stats_accounting(self):
        config = ServeConfig(max_batch=4, max_delay=0.25)
        with DaemonThread(config) as handle:
            with ServeClient(handle.address) as client:
                client.compile_pipelined(
                    [payload(f"p{i}", SOURCES[i % len(SOURCES)][1].replace(
                        SOURCES[i % len(SOURCES)][0], f"p{i}"))
                     for i in range(8)])
            stats = handle.daemon.snapshot()
        batches = stats["batches"]
        assert batches["requests"] == 8
        assert batches["dispatched"] >= 2          # max_batch caps at 4
        assert batches["max_size"] <= 4
        assert stats["requests"]["compiles"] == 8
        assert stats["latency"]["count"] == 8


# ======================================================= ordering
class TestOrdering:
    def test_pipelined_responses_in_arrival_order(self, daemon):
        with ServeClient(daemon.address) as client:
            payloads = []
            for i in range(12):
                name, source = SOURCES[i % len(SOURCES)]
                payloads.append(payload(name, source))
            # compile_pipelined asserts ids come back in send order
            responses = client.compile_pipelined(payloads)
        assert [r["id"] for r in responses] == \
            [i + 1 for i in range(len(payloads))]
        assert all(r["ok"] for r in responses)

    def test_order_holds_with_mixed_error_and_ok(self, daemon):
        with ServeClient(daemon.address) as client:
            ids = [
                client.send(payload(*SOURCES[0])),
                client.send({"op": "compile", "source": "u64 f( {"}),
                client.send(payload(*SOURCES[1])),
                client.send({"op": "transmogrify"}),
                client.send(payload(*SOURCES[2])),
            ]
            responses = [client.recv() for _ in ids]
        assert [r["id"] for r in responses] == ids
        assert [r["ok"] for r in responses] == \
            [True, False, True, False, True]
        assert responses[1]["error"]["code"] == "compile-error"
        assert responses[3]["error"]["code"] == "unknown-op"

    def test_concurrent_clients_each_keep_order(self, daemon):
        errors = []

        def worker(worker_id):
            try:
                with ServeClient(daemon.address) as client:
                    payloads = []
                    for i in range(6):
                        name, source = SOURCES[(worker_id + i)
                                               % len(SOURCES)]
                        payloads.append(payload(name, source))
                    responses = client.compile_pipelined(payloads)
                    assert all(r["ok"] for r in responses)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(f"worker {worker_id}: {exc!r}")

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


# ================================================== error shapes (wire)
class TestErrorResponses:
    def test_malformed_line_gets_bad_json_with_null_id(self, client):
        client.send_raw(b"this is not json\n")
        response = client.recv()
        assert response["ok"] is False
        assert response["id"] is None
        assert response["error"]["code"] == "bad-json"
        assert isinstance(response["error"]["message"], str)
        # the connection survives per-request protocol errors
        assert client.ping()["ok"] is True

    def test_oversized_source_is_rejected_per_request(self, client):
        big = ("u64 f(u8* ctx) { return 1; } //"
               + "x" * protocol.MAX_SOURCE_BYTES)
        response = client.compile(big, check=False)
        assert response["ok"] is False
        assert response["error"]["code"] == "oversized"
        assert response["id"] is not None
        assert client.ping()["ok"] is True

    def test_compile_error_shape(self, client):
        response = client.compile("u64 broken(u8* ctx) { return x; }",
                                  name="broken", check=False)
        assert response["ok"] is False
        assert response["error"]["code"] == "compile-error"
        assert response["error"]["message"]

    def test_check_raises_serve_error(self, client):
        with pytest.raises(ServeError) as info:
            client.compile("u64 broken(u8* ctx) { return x; }", check=True)
        assert info.value.code == "compile-error"

    def test_bad_request_shape(self, client):
        response = client.request(
            {"op": "compile", "source": "u64 f(u8* ctx) { return 1; }",
             "mcpu": "v9"})
        assert response["error"]["code"] == "bad-request"
        assert "mcpu" in response["error"]["message"]

    def test_error_codes_are_in_contract(self, client):
        probes = [
            ({"op": "nope"}, "unknown-op"),
            ({"op": "compile"}, "bad-request"),
        ]
        for request, expected in probes:
            response = client.request(request)
            assert response["error"]["code"] == expected
            assert response["error"]["code"] in protocol.ERROR_CODES


# ================================================== shutdown semantics
class TestShutdown:
    def test_drain_answers_in_flight_requests(self):
        """Requests already admitted when stop(drain=True) lands must
        all be answered before the daemon exits."""
        config = ServeConfig(max_batch=4, max_delay=0.15)
        handle = DaemonThread(config).start()
        try:
            client = ServeClient(handle.address)
            payloads = []
            for i in range(6):
                name, source = SOURCES[i % len(SOURCES)]
                payloads.append(payload(name, source))
            ids = [client.send(p) for p in payloads]
            handle.stop(drain=True)          # races the in-flight batch
            responses = [client.recv() for _ in ids]
            client.close()
        finally:
            handle.stop()
        assert [r["id"] for r in responses] == ids
        # every response is either a real result or an explicit
        # shutting-down rejection -- never silently dropped
        codes = [r["error"]["code"] for r in responses if not r["ok"]]
        assert all(c == "shutting-down" for c in codes)
        assert any(r["ok"] for r in responses)

    def test_drain_completes_with_held_connection(self):
        """Regression: a client that keeps its connection open after
        the drain must not wedge shutdown.  From Python 3.12,
        ``Server.wait_closed`` also waits for every accepted transport
        to detach, so awaiting it before connection teardown deadlocks
        against exactly this client."""
        config = ServeConfig(max_batch=4, max_delay=0.01)
        handle = DaemonThread(config).start()
        client = ServeClient(handle.address)
        try:
            ids = [client.send(payload(*SOURCES[i % len(SOURCES)]))
                   for i in range(6)]
            # the SIGTERM-handler path: stop arrives from outside the
            # protocol while the client holds its socket open
            handle.daemon.request_stop(drain=True)
            responses = [client.recv() for _ in ids]
            assert [r["id"] for r in responses] == ids
            assert all(r["ok"] for r in responses), responses
            # the daemon must close the connection out from under us
            # (EOF), not wait for us to hang up first
            assert client._rfile.readline() == b""
        finally:
            client.close()
            handle.stop()
        assert not handle._thread.is_alive()

    def test_shutdown_op_acks_then_stops(self):
        config = ServeConfig(max_delay=0.005)
        handle = DaemonThread(config).start()
        client = ServeClient(handle.address)
        ack = client.shutdown()
        assert ack["result"] == {"stopping": True}
        handle._thread.join(timeout=30)
        assert not handle._thread.is_alive()
        client.close()

    def test_socket_is_removed_after_stop(self):
        config = ServeConfig(max_delay=0.005)
        handle = DaemonThread(config).start()
        kind, path = handle.address
        assert kind == "unix"
        handle.stop()
        import os

        assert not os.path.exists(path)

    def test_new_connections_refused_after_stop(self):
        config = ServeConfig(max_delay=0.005)
        handle = DaemonThread(config).start()
        handle.stop()
        with pytest.raises((ConnectionError, FileNotFoundError, OSError)):
            ServeClient(handle.address)

    def test_stop_is_idempotent(self):
        handle = DaemonThread(ServeConfig(max_delay=0.005)).start()
        handle.stop()
        handle.stop()  # second call is a no-op, not an error


# =============================================== multi-process workers
class TestWorkerPool:
    def test_jobs_pool_matches_sequential(self):
        seq_cfg = ServeConfig(max_batch=8, max_delay=0.2)
        par_cfg = ServeConfig(max_batch=8, max_delay=0.2, jobs=2)
        requests = [payload(n, s, asm=True) for n, s in SOURCES]
        with DaemonThread(seq_cfg) as handle:
            with ServeClient(handle.address) as client:
                seq = client.compile_pipelined(requests)
        with DaemonThread(par_cfg) as handle:
            with ServeClient(handle.address) as client:
                par = client.compile_pipelined(requests)
            assert handle.daemon.config.cache_dir is not None
        for a, b in zip(seq, par):
            assert a["ok"] and b["ok"]
            assert a["result"]["asm"] == b["result"]["asm"]
            assert a["result"]["ni_optimized"] == b["result"]["ni_optimized"]


# ======================================= profile-guided layout (pgo)
class TestPgoRequests:
    """The ``pgo`` request field: parsing, per-request layout results,
    and memoization separation from plain compiles."""

    def test_parse_pgo_true_gives_default_spec(self):
        from repro.core.bytecode_passes.layout import PgoSpec
        request = parse_request(
            b'{"op": "compile", "source": "x", "pgo": true}')
        assert request.pgo == PgoSpec()

    def test_parse_pgo_dict(self):
        request = parse_request(protocol.encode(
            {"op": "compile", "source": "x",
             "pgo": {"tests": 3, "seed": 9}}))
        assert request.pgo.tests == 3
        assert request.pgo.seed == 9
        assert request.pgo.runs == 1  # defaults fill in

    def test_parse_pgo_absent_or_false_is_off(self):
        assert parse_request(
            b'{"op": "compile", "source": "x"}').pgo is None
        assert parse_request(
            b'{"op": "compile", "source": "x", "pgo": false}').pgo is None

    @pytest.mark.parametrize("pgo", [
        "yes",                       # not a bool/dict
        3,                           # not a bool/dict
        {"tests": -1},               # negative
        {"tests": True},             # bool masquerading as int
        {"bogus": 1},                # unknown key
        {"seed": "7"},               # wrong type
    ])
    def test_bad_pgo_rejected(self, pgo):
        obj = {"op": "compile", "source": "x", "pgo": pgo}
        with pytest.raises(ProtocolError) as info:
            parse_request(protocol.encode(obj))
        assert info.value.code == "bad-request"

    def test_pgo_compile_reports_layout(self, client):
        from repro.core.bytecode_passes.layout import PgoSpec
        name, source = SOURCES[2]  # branchy
        response = client.compile(source, name=name, entry=name,
                                  prog_type="tracepoint", pgo=True)
        result = response["result"]
        assert "layout" in result
        assert result["layout"]["spec"] == PgoSpec().fingerprint()
        assert result["layout"]["profiled_runs"] >= 1

    def test_pgo_and_plain_memoize_separately(self):
        config = ServeConfig(max_batch=4, max_delay=0.005)
        with DaemonThread(config) as handle:
            with ServeClient(handle.address) as client:
                name, source = SOURCES[2]
                plain = client.compile(source, name=name, entry=name,
                                       prog_type="tracepoint")["result"]
                pgo = client.compile(source, name=name, entry=name,
                                     prog_type="tracepoint",
                                     pgo=True)["result"]
        assert "layout" not in plain
        assert pgo["cached"] is False  # its own cache entry
        assert "layout" in pgo


# ================================= poisoned admission batches (drain)
class TestPoisonedBatch:
    """One failing request inside an admitted batch must produce a
    per-request error while its siblings compile, respond in order,
    and never stall the drain."""

    BAD_SOURCE = "u64 boom(u8* ctx) { return undefined_symbol; }"

    def test_siblings_survive_in_order_and_daemon_drains(self):
        config = ServeConfig(max_batch=8, max_delay=0.1)
        with DaemonThread(config) as handle:
            with ServeClient(handle.address) as client:
                requests = [payload(*SOURCES[0]),
                            payload("boom", self.BAD_SOURCE),
                            payload(*SOURCES[1]),
                            payload(*SOURCES[3])]
                # one admission window: sent before any response is read
                responses = client.compile_pipelined(requests)
                stats = client.stats()
            # context exit runs stop(drain=True): a wedged batch group
            # would hang right here
        assert [r["ok"] for r in responses] == [True, False, True, True]
        assert responses[1]["error"]["code"] == "compile-error"
        assert "undefined" in responses[1]["error"]["message"]
        # the siblings really compiled (identical to a local pipeline)
        for index, (name, source) in ((0, SOURCES[0]), (2, SOURCES[1]),
                                      (3, SOURCES[3])):
            program, report = reference_compile(name, source)
            assert responses[index]["result"]["ni_optimized"] == \
                report.ni_optimized
        assert stats["requests"]["compile_errors"] == 1
        assert stats["requests"]["compiles"] == 3
        # all four went through admission batching, not a bypass
        assert stats["batches"]["requests"] == 4

    def test_all_poisoned_batch_still_drains(self):
        config = ServeConfig(max_batch=4, max_delay=0.05)
        with DaemonThread(config) as handle:
            with ServeClient(handle.address) as client:
                responses = client.compile_pipelined(
                    [payload(f"boom{i}",
                             self.BAD_SOURCE.replace("boom", f"boom{i}"))
                     for i in range(3)])
        assert all(not r["ok"] for r in responses)
        assert all(r["error"]["code"] == "compile-error"
                   for r in responses)


# ================================================== superopt requests
class TestSuperoptRequests:
    """The ``superopt`` request field: parsing, admission-batch
    grouping, the per-request result block, memoization separation,
    and drain behaviour with poisoned superopt jobs."""

    def test_parse_superopt_true_gives_default_spec(self):
        from repro.core.superopt import SuperoptSpec
        request = parse_request(
            b'{"op": "compile", "source": "x", "superopt": true}')
        assert request.superopt == SuperoptSpec()

    def test_parse_superopt_dict(self):
        request = parse_request(protocol.encode(
            {"op": "compile", "source": "x",
             "superopt": {"window": 3, "iterations": 8}}))
        assert request.superopt.window == 3
        assert request.superopt.iterations == 8
        assert request.superopt.seed == 2024  # defaults fill in

    def test_parse_superopt_absent_or_false_is_off(self):
        assert parse_request(
            b'{"op": "compile", "source": "x"}').superopt is None
        assert parse_request(
            b'{"op": "compile", "source": "x", "superopt": false}'
        ).superopt is None

    @pytest.mark.parametrize("superopt", [
        "yes",                       # not a bool/dict
        3,                           # not a bool/dict
        {"iterations": -1},          # negative
        {"window": True},            # bool masquerading as int
        {"bogus": 1},                # unknown key
        {"seed": "7"},               # wrong type
    ])
    def test_bad_superopt_rejected(self, superopt):
        obj = {"op": "compile", "source": "x", "superopt": superopt}
        with pytest.raises(ProtocolError) as info:
            parse_request(protocol.encode(obj))
        assert info.value.code == "bad-request"

    def test_superopt_does_not_split_admission_groups(self):
        """The spec rides on the CompileJob, so jobs with different
        superopt settings batch into one ``compile_many`` window."""
        plain = parse_request(protocol.encode(
            {"op": "compile", "source": "x"}))
        tuned = parse_request(protocol.encode(
            {"op": "compile", "source": "x", "superopt": True}))
        assert plain.config_key == tuned.config_key
        assert tuned.superopt is not None

    def test_superopt_compile_reports_counters(self, client):
        from repro.core.superopt import SuperoptSpec
        name, source = SOURCES[0]  # fold: constant math to collapse
        response = client.compile(source, name=name, entry=name,
                                  prog_type="tracepoint", superopt=True)
        result = response["result"]
        assert "superopt" in result
        assert result["superopt"]["spec"] == SuperoptSpec().fingerprint()
        assert result["superopt"]["searches"] >= 0
        assert result["superopt"]["rewrites"] >= 0

    def test_superopt_and_plain_memoize_separately(self):
        config = ServeConfig(max_batch=4, max_delay=0.005)
        with DaemonThread(config) as handle:
            with ServeClient(handle.address) as client:
                name, source = SOURCES[0]
                plain = client.compile(source, name=name, entry=name,
                                       prog_type="tracepoint")["result"]
                tuned = client.compile(source, name=name, entry=name,
                                       prog_type="tracepoint",
                                       superopt=True)["result"]
        assert "superopt" not in plain
        assert tuned["cached"] is False  # its own cache entry
        assert "superopt" in tuned
        assert tuned["ni_optimized"] <= plain["ni_optimized"]

    def test_mixed_superopt_batch_matches_sequential(self):
        """One admission window mixing superopt-on and -off jobs must
        return exactly what one-at-a-time compiles return."""
        sequential = {}
        config = ServeConfig(max_batch=1, max_delay=0.0)
        with DaemonThread(config) as handle:
            with ServeClient(handle.address) as client:
                for name, source in SOURCES[:3]:
                    for superopt in (False, True):
                        response = client.compile(
                            source, name=name, entry=name,
                            prog_type="tracepoint", superopt=superopt)
                        sequential[(name, superopt)] = response["result"]
        config = ServeConfig(max_batch=8, max_delay=0.1)
        with DaemonThread(config) as handle:
            with ServeClient(handle.address) as client:
                requests = [payload(name, source, superopt=superopt)
                            for name, source in SOURCES[:3]
                            for superopt in (False, True)]
                responses = client.compile_pipelined(requests)
        for request, response in zip(requests, responses):
            assert response["ok"], response
            want = sequential[(request["name"], request["superopt"])]
            got = response["result"]
            assert got["ni_optimized"] == want["ni_optimized"]
            assert got.get("superopt", {}).get("rewrites") == \
                want.get("superopt", {}).get("rewrites")

    def test_poisoned_superopt_batch_drains(self):
        """A failing superopt job inside an admitted batch errors per
        request while superopt siblings compile — and the daemon still
        drains (no wedged batch group)."""
        bad = "u64 boom(u8* ctx) { return undefined_symbol; }"
        config = ServeConfig(max_batch=8, max_delay=0.1)
        with DaemonThread(config) as handle:
            with ServeClient(handle.address) as client:
                requests = [payload(*SOURCES[0], superopt=True),
                            payload("boom", bad, superopt=True),
                            payload(*SOURCES[1], superopt=True)]
                responses = client.compile_pipelined(requests)
            # context exit runs stop(drain=True): a wedged superopt
            # group would hang right here
        assert [r["ok"] for r in responses] == [True, False, True]
        assert responses[1]["error"]["code"] == "compile-error"
        for index in (0, 2):
            assert "superopt" in responses[index]["result"]


# ======================================== tenants + priorities (PR 10)
class TestTenantPriorityProtocol:
    def test_defaults(self):
        request = parse_request(protocol.encode(payload(*SOURCES[0])))
        assert request.tenant == ""
        assert request.priority == 0

    def test_explicit_values_parse(self):
        request = parse_request(protocol.encode(
            payload(*SOURCES[0], tenant="team-a", priority=7)))
        assert request.tenant == "team-a"
        assert request.priority == 7

    @pytest.mark.parametrize("extra", [
        {"tenant": 42},
        {"tenant": "x" * (protocol.MAX_TENANT_CHARS + 1)},
        {"priority": -1},
        {"priority": protocol.MAX_PRIORITY + 1},
        {"priority": "high"},
        {"priority": True},
    ], ids=["tenant-type", "tenant-length", "prio-negative",
            "prio-too-high", "prio-type", "prio-bool"])
    def test_bad_values_rejected(self, extra):
        with pytest.raises(ProtocolError) as err:
            parse_request(protocol.encode(payload(*SOURCES[0], **extra)))
        assert err.value.code == "bad-request"

    def test_excluded_from_config_key(self):
        # tenant/priority shape scheduling, never compilation: requests
        # differing only in them must share one admission group (and,
        # downstream, one cache entry)
        plain = parse_request(protocol.encode(payload(*SOURCES[0])))
        tagged = parse_request(protocol.encode(
            payload(*SOURCES[0], tenant="team-a", priority=9)))
        assert plain.config_key == tagged.config_key

    def test_daemon_accepts_and_counts_tenants(self):
        config = ServeConfig(max_batch=8, max_delay=0.01)
        with DaemonThread(config) as handle:
            with ServeClient(handle.address) as client:
                for tenant in ("team-a", "team-a", "team-b"):
                    response = client.request(payload(
                        *SOURCES[0], tenant=tenant, priority=2),
                        check=True)
                    assert response["ok"]
            snapshot = handle.daemon.snapshot()
        fairness = snapshot["fairness"]
        assert fairness["served_by_tenant"]["team-a"] == 2
        assert fairness["served_by_tenant"]["team-b"] == 1
        assert fairness["served_by_priority"]["2"] == 3


class TestFairAdmissionQueue:
    """Unit tests for the weighted-fair priority queue (no daemon)."""

    def _drain(self, queue):
        import asyncio

        out = []
        while True:
            try:
                out.append(queue.get_nowait())
            except asyncio.QueueEmpty:
                return out

    def test_higher_priority_drains_first(self):
        from repro.serve.fairness import FairAdmissionQueue

        queue = FairAdmissionQueue()
        queue.put_nowait("low-1", priority=0)
        queue.put_nowait("high", priority=9)
        queue.put_nowait("low-2", priority=0)
        queue.put_nowait("mid", priority=4)
        assert self._drain(queue) == ["high", "mid", "low-1", "low-2"]

    def test_round_robin_across_backlogged_tenants(self):
        from repro.serve.fairness import FairAdmissionQueue

        queue = FairAdmissionQueue()
        for i in range(6):
            queue.put_nowait(f"a{i}", tenant="a")
        queue.put_nowait("b0", tenant="b")
        queue.put_nowait("c0", tenant="c")
        order = self._drain(queue)
        # the light tenants are served within the first round — a
        # six-deep backlog cannot starve them
        assert order.index("b0") <= 2
        assert order.index("c0") <= 2
        assert order[-4:] == ["a2", "a3", "a4", "a5"]

    def test_weights_skew_service_proportionally(self):
        from repro.serve.fairness import FairAdmissionQueue

        queue = FairAdmissionQueue(weights={"big": 3})
        for i in range(6):
            queue.put_nowait(f"big{i}", tenant="big")
            queue.put_nowait(f"small{i}", tenant="small")
        order = self._drain(queue)
        # weight 3 vs 1: the first service round is 3 bigs to 1 small
        first_round = order[:4]
        assert sum(1 for x in first_round if x.startswith("big")) == 3
        assert sum(1 for x in first_round if x.startswith("small")) == 1
        assert len(order) == 12  # nothing lost

    def test_fifo_within_one_tenant(self):
        from repro.serve.fairness import FairAdmissionQueue

        queue = FairAdmissionQueue()
        for i in range(5):
            queue.put_nowait(i, tenant="t")
        assert self._drain(queue) == [0, 1, 2, 3, 4]

    def test_control_items_bypass_everything(self):
        from repro.serve.fairness import FairAdmissionQueue

        queue = FairAdmissionQueue(maxsize=1)
        queue.put_nowait("request", priority=9)
        queue.put_control("stop")        # exempt from maxsize too
        assert queue.qsize() == 2
        assert queue.get_nowait() == "stop"
        assert queue.get_nowait() == "request"

    def test_overflow_raises_queue_full(self):
        import asyncio

        from repro.serve.fairness import FairAdmissionQueue

        queue = FairAdmissionQueue(maxsize=2)
        queue.put_nowait(1)
        queue.put_nowait(2)
        with pytest.raises(asyncio.QueueFull):
            queue.put_nowait(3)

    def test_async_get_wakes_on_put(self):
        import asyncio

        from repro.serve.fairness import FairAdmissionQueue

        async def scenario():
            queue = FairAdmissionQueue()
            getter = asyncio.ensure_future(queue.get())
            await asyncio.sleep(0)       # getter parks on a waiter
            queue.put_nowait("item", priority=3, tenant="t")
            return await asyncio.wait_for(getter, timeout=5)

        assert asyncio.run(scenario()) == "item"

    def test_backlog_snapshot(self):
        from repro.serve.fairness import FairAdmissionQueue

        queue = FairAdmissionQueue()
        queue.put_nowait("x", priority=5, tenant="a")
        queue.put_nowait("y", priority=5, tenant="a")
        queue.put_nowait("z", priority=0, tenant="b")
        assert queue.backlog() == {5: {"a": 2}, 0: {"b": 1}}


class TestPriorityPreemption:
    def test_high_priority_cuts_the_linger_timer(self):
        """With a long admission window, a priority >= preempt_priority
        arrival must dispatch immediately instead of waiting out the
        linger — the preempted-batches counter records it."""
        import time

        config = ServeConfig(max_batch=64, max_delay=0.5,
                             preempt_priority=1)
        with DaemonThread(config) as handle:
            with ServeClient(handle.address) as client:
                client.request(payload(*SOURCES[0]), check=True)  # warm up
                started = time.monotonic()
                response = client.request(
                    payload(*SOURCES[1], priority=5), check=True)
                elapsed = time.monotonic() - started
                assert response["ok"]
                assert elapsed < 0.4  # did not linger the full 500ms
            snapshot = handle.daemon.snapshot()
        assert snapshot["batches"]["preempted"] >= 1

    def test_default_priority_still_batches(self):
        """Priority-0 traffic must keep the PR-5 batching behavior:
        pipelined requests land in shared admission batches."""
        config = ServeConfig(max_batch=8, max_delay=0.05,
                             preempt_priority=1)
        with DaemonThread(config) as handle:
            with ServeClient(handle.address) as client:
                responses = client.compile_pipelined(
                    [payload(*SOURCES[i % len(SOURCES)])
                     for i in range(8)])
                assert all(r["ok"] for r in responses)
            snapshot = handle.daemon.snapshot()
        assert snapshot["batches"]["max_size"] > 1
