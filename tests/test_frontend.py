"""Frontend tests: lexer, parser, and semantic end-to-end behaviour.

Semantic tests compile mini-C, run the program in the VM, and check the
returned value — exercising the whole pipeline under each language
feature.
"""

import struct

import pytest

from repro.frontend import (
    CompileError,
    LexError,
    ParseError,
    compile_source,
    parse,
    tokenize,
)
from repro.codegen import compile_function
from repro.ir import validate_module
from repro.isa import ProgramType
from repro.vm import Machine


def run_expr(body: str, ctx: bytes = b"\x00" * 64, optimize: bool = False) -> int:
    """Compile 'u64 f(u8* ctx) { <body> }' and run it."""
    source = f"u64 f(u8* ctx) {{ {body} }}"
    module = compile_source(source)
    validate_module(module)
    if optimize:
        from repro.core import MerlinPipeline

        program, _ = MerlinPipeline().compile(
            module.get("f"), module, prog_type=ProgramType.TRACEPOINT,
            ctx_size=64,
        )
    else:
        program = compile_function(module.get("f"), module,
                                   prog_type=ProgramType.TRACEPOINT,
                                   ctx_size=64)
    return Machine(program).run(ctx=ctx).return_value


class TestLexer:
    def test_tokens(self):
        kinds = [t.kind for t in tokenize("u64 x = 0x10; // hi")]
        assert kinds == ["kw", "name", "punct", "num", "punct", "eof"]

    def test_line_numbers(self):
        tokens = tokenize("a\n\nb")
        assert tokens[0].line == 1
        assert tokens[1].line == 3

    def test_longest_match(self):
        texts = [t.text for t in tokenize("a <<= b << c < d")]
        assert "<<=" in texts and "<<" in texts and "<" in texts

    def test_block_comment(self):
        assert [t.kind for t in tokenize("/* x\ny */ a")][0] == "name"

    def test_bad_char(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestParser:
    def test_precedence(self):
        # 2 + 3 * 4 == 14, not 20
        assert run_expr("return 2 + 3 * 4;") == 14

    def test_parens(self):
        assert run_expr("return (2 + 3) * 4;") == 20

    def test_shift_precedence(self):
        assert run_expr("return 1 << 2 + 1;") == 8

    def test_comparison_result(self):
        assert run_expr("return 3 < 5;") == 1
        assert run_expr("return 5 < 3;") == 0

    def test_unary_minus(self):
        assert run_expr("u64 a = 5; return 0 - (0 - a);") == 5

    def test_sizeof(self):
        assert run_expr("return sizeof(u32) + sizeof(u64*);") == 12

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("u64 f() { return 0 }")

    def test_bad_map_kind(self):
        with pytest.raises(ParseError):
            parse("map treemap m(u32, u32, 4);")

    def test_conditional_expr(self):
        assert run_expr("u64 a = 5; return a > 3 ? 10 : 20;") == 10

    def test_postfix_increment(self):
        assert run_expr("u64 a = 5; a++; return a;") == 6


class TestSemantics:
    def test_arithmetic(self):
        assert run_expr("u64 a = 7; u64 b = 3; return a * b + a / b - a % b;") \
            == 21 + 2 - 1

    def test_bitwise(self):
        assert run_expr("u64 a = 0xf0; u64 b = 0x0f; "
                        "return (a | b) ^ (a & b);") == 0xFF

    def test_u32_wraparound(self):
        assert run_expr("u32 a = 0xffffffff; a = a + 1; return a;") == 0

    def test_u8_truncation(self):
        assert run_expr("u8 a = (u8)300; return a;") == 300 % 256

    def test_if_else(self):
        body = """
        u64 x = 10;
        if (x > 5) { return 1; } else { return 2; }
        """
        assert run_expr(body) == 1

    def test_nested_if(self):
        body = """
        u64 x = 7;
        if (x > 5) { if (x > 8) { return 1; } return 2; }
        return 3;
        """
        assert run_expr(body) == 2

    def test_while_loop(self):
        assert run_expr(
            "u64 i = 0; u64 s = 0; while (i < 10) { s += i; i += 1; } return s;"
        ) == 45

    def test_for_loop(self):
        assert run_expr(
            "u64 s = 0; for (u64 i = 0; i < 5; i += 1) { s += i * i; } return s;"
        ) == 30

    def test_break_continue(self):
        body = """
        u64 s = 0;
        for (u64 i = 0; i < 10; i += 1) {
            if (i == 3) { continue; }
            if (i == 6) { break; }
            s += i;
        }
        return s;
        """
        assert run_expr(body) == 0 + 1 + 2 + 4 + 5

    def test_short_circuit_and(self):
        body = """
        u64 a = 0;
        u64 c = 0;
        if (a != 0 && 10 / a > 1) { c = 1; }
        return c;
        """
        assert run_expr(body) == 0  # no div-by-zero because && shortcuts

    def test_short_circuit_or(self):
        assert run_expr("u64 a = 1; return a == 1 || a == 99;") == 1

    def test_logical_not(self):
        assert run_expr("u64 a = 0; return !a;") == 1

    def test_ctx_loads(self):
        ctx = struct.pack("<QQ", 1234, 5678) + bytes(48)
        assert run_expr("return *(u64*)(ctx + 8);", ctx=ctx) == 5678

    def test_unaligned_u16_read(self):
        ctx = bytes([0, 0, 0, 0x34, 0x12]) + bytes(59)
        assert run_expr("return *(u16*)(ctx + 3);", ctx=ctx) == 0x1234

    def test_local_array_and_pointer(self):
        body = """
        u8 buf[8];
        buf[0] = 42;
        buf[1] = 7;
        return (u64)buf[0] + (u64)buf[1];
        """
        assert run_expr(body) == 49

    def test_address_of_local(self):
        body = """
        u64 x = 5;
        u64* p = &x;
        *p = 9;
        return x;
        """
        assert run_expr(body) == 9

    def test_loop_variable_phi(self):
        # SSA phi construction across a loop with two live variables
        body = """
        u64 a = 1;
        u64 b = 1;
        for (u64 i = 0; i < 10; i += 1) {
            u64 t = a + b;
            a = b;
            b = t;
        }
        return b;
        """
        assert run_expr(body) == 144  # fib(12)

    def test_variable_shadowing_use_before_decl_rejected(self):
        with pytest.raises(CompileError):
            run_expr("return q;")

    def test_assignment_to_undeclared_rejected(self):
        with pytest.raises(CompileError):
            run_expr("q = 1; return 0;")

    def test_unknown_function_rejected(self):
        with pytest.raises(CompileError):
            run_expr("return frobnicate();")

    def test_return_value_coerced(self):
        assert run_expr("u8 a = 200; return a;") == 200


class TestMaps:
    def test_map_counter(self, counter_source):
        module = compile_source(counter_source)
        program = compile_function(module.get("count"), module,
                                   prog_type=ProgramType.TRACEPOINT,
                                   ctx_size=64)
        machine = Machine(program)
        for _ in range(5):
            machine.run(ctx=b"\x00" * 64)
        value = struct.unpack("<Q", bytes(
            machine.maps["counters"].region.data[:8]))[0]
        assert value == 5

    def test_map_update_and_delete(self):
        source = """
map hash kv(u64, u64, 16);

u64 f(u8* ctx) {
    u64 key = 7;
    u64 val = 99;
    map_update(kv, &key, &val, BPF_ANY);
    u64* got = map_lookup(kv, &key);
    if (got == 0) { return 0; }
    u64 result = *got;
    map_delete(kv, &key);
    u64* gone = map_lookup(kv, &key);
    if (gone != 0) { return 0; }
    return result;
}
"""
        module = compile_source(source)
        program = compile_function(module.get("f"), module,
                                   prog_type=ProgramType.TRACEPOINT,
                                   ctx_size=64)
        assert Machine(program).run(ctx=b"\x00" * 64).return_value == 99

    def test_map_as_nonfirst_argument(self):
        source = """
map percpu_array events(u32, u64, 1);

u64 f(u8* ctx) {
    u8 data[16];
    *(u64*)(data + 0) = 1;
    *(u64*)(data + 8) = 2;
    perf_event_output(ctx, events, 0, data, 16);
    return 0;
}
"""
        module = compile_source(source)
        program = compile_function(module.get("f"), module,
                                   prog_type=ProgramType.TRACEPOINT,
                                   ctx_size=64)
        machine = Machine(program)
        machine.run(ctx=b"\x00" * 64)
        assert machine.helpers.output_bytes == 16


class TestOptimizedSemantics:
    """Every language feature must behave identically under Merlin."""

    CASES = [
        "u64 s = 0; for (u64 i = 0; i < 8; i += 1) { s = s * 3 + i; } return s;",
        "u32 a = 0xdeadbeef; return (a >> 16) & 0xff;",
        "u64 x = *(u32*)(ctx + 5); return x >> 3;",
        "u8 buf[16]; buf[3] = 9; *(u32*)(buf + 4) = 77; "
        "return (u64)buf[3] + *(u32*)(buf + 4);",
        "u64 x = 2; u64 y = x > 1 ? 100 : 200; return y + x;",
    ]

    @pytest.mark.parametrize("body", CASES)
    def test_merlin_preserves_semantics(self, body):
        ctx = bytes(range(64))
        assert run_expr(body, ctx=ctx) == run_expr(body, ctx=ctx,
                                                   optimize=True)
