"""VM tests: ALU semantics, memory, maps, helpers, cost accounting."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.isa import BpfProgram, MapSpec, assemble
from repro.vm import (
    ArrayMap,
    BPF_EXIST,
    BPF_NOEXIST,
    HashMap,
    LruHashMap,
    Machine,
    MapError,
    Memory,
    MemoryFault,
    VmFault,
    create_map,
)

U64 = (1 << 64) - 1


def run(asm: str, ctx: bytes = b"", packet=None, maps=None,
        ctx_size: int = 64) -> int:
    program = BpfProgram("t", assemble(asm), maps=maps or {},
                         ctx_size=ctx_size)
    return Machine(program).run(ctx=ctx, packet=packet).return_value


class TestAlu64:
    def test_add_wraps(self):
        assert run("r0 = -1\nr0 += 2\nexit") == 1

    def test_sub_underflow_wraps(self):
        assert run("r0 = 0\nr0 -= 1\nexit") == U64

    def test_mul(self):
        assert run("r0 = 7\nr0 *= 6\nexit") == 42

    def test_div_unsigned(self):
        assert run("r0 = -1\nr1 = 2\nr0 /= r1\nexit") == U64 // 2

    def test_div_by_zero_yields_zero(self):
        assert run("r0 = 10\nr1 = 0\nr0 /= r1\nexit") == 0

    def test_mod_by_zero_keeps_dst(self):
        assert run("r0 = 10\nr1 = 0\nr0 %= r1\nexit") == 10

    def test_shifts(self):
        assert run("r0 = 1\nr0 <<= 40\nexit") == 1 << 40
        assert run("r0 = 1\nr0 <<= 40\nr0 >>= 8\nexit") == 1 << 32

    def test_shift_modulo_width(self):
        assert run("r0 = 1\nr1 = 65\nr0 <<= r1\nexit") == 2

    def test_arsh_sign_extends(self):
        assert run("r0 = -8\nr0 s>>= 1\nexit") == (-4) & U64

    def test_neg(self):
        assert run("r0 = 5\nr0 = -r0\nexit") == (-5) & U64

    def test_imm_sign_extension(self):
        # mov64 imm is sign-extended to 64 bits
        assert run("r0 = -1\nexit") == U64


class TestAlu32:
    def test_mov32_zero_extends(self):
        assert run("r0 = -1\nw0 = w0\nexit") == 0xFFFFFFFF

    def test_add32_wraps_and_zero_extends(self):
        assert run("r0 = 0xffffffff ll\nw0 += 1\nexit") == 0

    def test_alu32_imm_masked(self):
        assert run("w0 = -1\nexit") == 0xFFFFFFFF

    def test_rsh32_operates_on_low_half(self):
        assert run("r0 = 0xdeadbeefcafebabe ll\nw0 >>= 16\nexit") == 0xCAFE

    def test_bswap16(self):
        assert run("r0 = 0x1234\nr0 = be16 r0\nexit") == 0x3412


class TestJumps:
    def test_taken_and_not_taken(self):
        asm = """
            r1 = 5
            if r1 > 3 goto yes
            r0 = 0
            exit
        yes:
            r0 = 1
            exit
        """
        assert run(asm) == 1

    def test_signed_compare(self):
        asm = """
            r1 = -5
            if r1 s< 0 goto neg
            r0 = 0
            exit
        neg:
            r0 = 1
            exit
        """
        assert run(asm) == 1

    def test_unsigned_compare_of_negative(self):
        asm = """
            r1 = -5
            if r1 < 0 goto small
            r0 = 1
            exit
        small:
            r0 = 0
            exit
        """
        assert run(asm) == 1  # -5 as unsigned is huge

    def test_jset(self):
        asm = """
            r1 = 0b1010
            if r1 & 0b0010 goto yes
            r0 = 0
            exit
        yes:
            r0 = 1
            exit
        """
        assert run(asm.replace("0b1010", "10").replace("0b0010", "2")) == 1

    def test_jump32_compares_low_half(self):
        asm = """
            r1 = 0xffffffff00000001 ll
            if w1 == 1 goto yes
            r0 = 0
            exit
        yes:
            r0 = 1
            exit
        """
        assert run(asm) == 1

    def test_infinite_loop_trapped(self):
        program = BpfProgram("loop", assemble("start:\ngoto start"))
        with pytest.raises(VmFault, match="budget"):
            Machine(program, max_insns=1000).run()

    def test_out_of_bounds_pc_trapped(self):
        program = BpfProgram("bad", assemble("r0 = 0\ngoto +5\nexit"))
        with pytest.raises(VmFault):
            Machine(program).run()


class TestMemoryAccess:
    def test_stack_store_load(self):
        asm = """
            r1 = 0x11223344
            *(u32 *)(r10 - 4) = r1
            r0 = *(u32 *)(r10 - 4)
            exit
        """
        assert run(asm) == 0x11223344

    def test_little_endian_byte_order(self):
        asm = """
            *(u32 *)(r10 - 4) = 0x11223344
            r0 = *(u8 *)(r10 - 4)
            exit
        """
        assert run(asm) == 0x44

    def test_store_imm(self):
        assert run("*(u64 *)(r10 - 8) = 99\nr0 = *(u64 *)(r10 - 8)\nexit") == 99

    def test_ctx_read(self):
        ctx = struct.pack("<I", 0xABCD1234) + bytes(60)
        assert run("r0 = *(u32 *)(r1 + 0)\nexit", ctx=ctx) == 0xABCD1234

    def test_packet_pointers_in_ctx(self):
        asm = """
            r2 = *(u64 *)(r1 + 0)
            r0 = *(u8 *)(r2 + 2)
            exit
        """
        assert run(asm, packet=b"\x01\x02\x03\x04", ctx_size=24) == 3

    def test_unmapped_access_faults(self):
        with pytest.raises(VmFault):
            run("r1 = 0x999 ll\nr0 = *(u64 *)(r1 + 0)\nexit")

    def test_stack_overflow_faults(self):
        with pytest.raises(VmFault):
            run("r0 = *(u64 *)(r10 - 520)\nexit")

    def test_stack_garbage_not_zero(self):
        # uninitialized stack reads see the poison pattern, not zero
        assert run("r0 = *(u8 *)(r10 - 100)\nexit") == 0xA5


class TestAtomics:
    def test_xadd(self):
        asm = """
            *(u64 *)(r10 - 8) = 10
            r1 = 5
            lock *(u64 *)(r10 - 8) += r1
            r0 = *(u64 *)(r10 - 8)
            exit
        """
        assert run(asm) == 15

    def test_fetch_add_returns_old(self):
        asm = """
            *(u64 *)(r10 - 8) = 10
            r1 = 5
            r1 = lock *(u64 *)(r10 - 8) += r1
            r0 = r1
            exit
        """
        assert run(asm) == 10

    def test_atomic_and_or_xor(self):
        asm = """
            *(u64 *)(r10 - 8) = 12
            r1 = 10
            lock *(u64 *)(r10 - 8) &= r1
            r2 = 1
            lock *(u64 *)(r10 - 8) |= r2
            r0 = *(u64 *)(r10 - 8)
            exit
        """
        assert run(asm) == (12 & 10) | 1


class TestMaps:
    def _memory(self):
        return Memory()

    def test_array_lookup_hit_and_miss(self):
        m = create_map(MapSpec("a", "array", 4, 8, 4), self._memory())
        assert m.lookup(struct.pack("<I", 0)) != 0
        assert m.lookup(struct.pack("<I", 9)) == 0

    def test_array_update_and_read(self):
        mem = self._memory()
        m = create_map(MapSpec("a", "array", 4, 8, 4), mem)
        key = struct.pack("<I", 2)
        assert m.update(key, struct.pack("<Q", 777)) == 0
        addr = m.lookup(key)
        assert mem.load(addr, 8) == 777

    def test_array_noexist_rejected(self):
        m = create_map(MapSpec("a", "array", 4, 8, 4), self._memory())
        rc = m.update(struct.pack("<I", 0), struct.pack("<Q", 1), BPF_NOEXIST)
        assert rc == -17

    def test_array_delete_rejected(self):
        m = create_map(MapSpec("a", "array", 4, 8, 4), self._memory())
        assert m.delete(struct.pack("<I", 0)) == -22

    def test_array_key_size_enforced(self):
        with pytest.raises(MapError):
            create_map(MapSpec("a", "array", 8, 8, 4), self._memory())

    def test_hash_insert_lookup_delete(self):
        mem = self._memory()
        m = create_map(MapSpec("h", "hash", 8, 8, 4), mem)
        key = struct.pack("<Q", 42)
        assert m.lookup(key) == 0
        assert m.update(key, struct.pack("<Q", 1)) == 0
        assert m.lookup(key) != 0
        assert m.delete(key) == 0
        assert m.lookup(key) == 0

    def test_hash_full_rejects(self):
        m = create_map(MapSpec("h", "hash", 8, 8, 2), self._memory())
        for i in range(2):
            assert m.update(struct.pack("<Q", i), struct.pack("<Q", i)) == 0
        assert m.update(struct.pack("<Q", 99), struct.pack("<Q", 0)) == -7

    def test_hash_exist_flag(self):
        m = create_map(MapSpec("h", "hash", 8, 8, 4), self._memory())
        assert m.update(struct.pack("<Q", 1), struct.pack("<Q", 1),
                        BPF_EXIST) == -2

    def test_lru_evicts_oldest(self):
        m = create_map(MapSpec("l", "lru_hash", 8, 8, 2), self._memory())
        k = lambda i: struct.pack("<Q", i)
        m.update(k(1), struct.pack("<Q", 1))
        m.update(k(2), struct.pack("<Q", 2))
        m.lookup(k(1))  # touch 1 so 2 becomes LRU
        assert m.update(k(3), struct.pack("<Q", 3)) == 0
        assert m.lookup(k(2)) == 0  # evicted
        assert m.lookup(k(1)) != 0

    def test_value_size_enforced(self):
        m = create_map(MapSpec("h", "hash", 8, 8, 4), self._memory())
        with pytest.raises(MapError):
            m.update(struct.pack("<Q", 1), b"xx")

    def test_unknown_map_type(self):
        with pytest.raises(MapError):
            create_map(MapSpec("x", "treemap", 4, 4, 4), self._memory())


class TestCostAccounting:
    def test_instructions_counted(self):
        program = BpfProgram("t", assemble("r0 = 0\nr0 += 1\nexit"))
        machine = Machine(program)
        result = machine.run()
        assert result.counters.instructions == 3

    def test_ld_imm64_counts_once_executed(self):
        program = BpfProgram("t", assemble("r0 = 0x1 ll\nexit"))
        assert Machine(program).run().counters.instructions == 2

    def test_memory_access_hits_cache(self):
        asm = "*(u64 *)(r10 - 8) = 1\nr0 = *(u64 *)(r10 - 8)\nexit"
        program = BpfProgram("t", assemble(asm))
        machine = Machine(program)
        result = machine.run()
        assert result.counters.cache_references >= 2

    def test_repeated_runs_warm_cache(self):
        asm = "r0 = *(u64 *)(r10 - 8)\n" * 1 + "*(u64 *)(r10 - 8) = 1\nr0 = *(u64 *)(r10 - 8)\nexit"
        program = BpfProgram("t", assemble("*(u64 *)(r10 - 8) = 1\nr0 = *(u64 *)(r10 - 8)\nexit"))
        machine = Machine(program)
        first = machine.run().counters
        second = machine.run().counters
        assert second.cycles <= first.cycles  # warm cache is never slower

    def test_div_costs_more_than_add(self):
        add = Machine(BpfProgram("a", assemble("r0 = 1\nr0 += 1\nexit"))).run()
        div = Machine(BpfProgram("d", assemble("r0 = 1\nr1 = 1\nr0 /= r1\nexit"))).run()
        assert div.counters.cycles > add.counters.cycles

    def test_branches_counted(self):
        asm = """
            r0 = 0
            if r0 == 0 goto skip
            r0 = 1
        skip:
            exit
        """
        result = Machine(BpfProgram("b", assemble(asm))).run()
        assert result.counters.branches == 1


class TestHelpers:
    def test_ktime_monotonic(self):
        asm = "call 5\nr6 = r0\ncall 5\nr0 -= r6\nexit"
        program = BpfProgram("t", assemble(asm))
        assert Machine(program).run().return_value >= 0

    def test_prandom_deterministic_per_seed(self):
        asm = "call 7\nexit"
        program = BpfProgram("t", assemble(asm))
        a = Machine(program, seed=1).run().return_value
        b = Machine(program, seed=1).run().return_value
        c = Machine(program, seed=2).run().return_value
        assert a == b
        assert a != c  # overwhelmingly likely

    def test_pid_tgid_packing(self):
        from repro.vm import TaskContext

        asm = "call 14\nexit"
        program = BpfProgram("t", assemble(asm))
        machine = Machine(program, task=TaskContext(pid=7, tgid=9))
        assert machine.run().return_value == (9 << 32) | 7

    def test_unknown_helper_faults(self):
        from repro.vm import HelperError

        program = BpfProgram("t", assemble("call 9999\nexit"))
        with pytest.raises(HelperError):
            Machine(program).run()


@given(st.integers(0, U64), st.integers(0, U64))
def test_alu_add_matches_python(a, b):
    asm = f"r0 = 0x{a:x} ll\nr1 = 0x{b:x} ll\nr0 += r1\nexit"
    assert run(asm) == (a + b) & U64


@given(st.integers(0, U64), st.integers(0, 63))
def test_alu_shift_matches_python(a, s):
    asm = f"r0 = 0x{a:x} ll\nr0 >>= {s}\nexit"
    assert run(asm) == a >> s
