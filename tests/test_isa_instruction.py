"""Unit tests for eBPF instruction encode/decode and classification."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    EncodingError,
    Instruction,
    alu32,
    alu64,
    atomic,
    call,
    encoded_length,
    exit_,
    jump,
    jump32,
    ld_imm64,
    load,
    mov32_imm,
    mov64_imm,
    mov64_reg,
    ni,
    store_imm,
    store_reg,
)
from repro.isa import opcodes as op


class TestEncoding:
    def test_simple_mov_is_8_bytes(self):
        assert len(mov64_imm(1, 5).encode()) == 8

    def test_ld_imm64_is_16_bytes(self):
        assert len(ld_imm64(1, 0xDEADBEEFCAFEBABE).encode()) == 16

    def test_roundtrip_mov(self):
        insn = mov64_imm(3, -42)
        assert Instruction.decode_stream(insn.encode()) == [insn]

    def test_roundtrip_ld_imm64_large(self):
        insn = ld_imm64(2, 0xFFFF_FFFF_F000_0000)
        assert Instruction.decode_stream(insn.encode()) == [insn]

    def test_roundtrip_negative_offset_store(self):
        insn = store_reg(4, op.R10, -4, op.R1)
        assert Instruction.decode_stream(insn.encode()) == [insn]

    def test_decode_rejects_partial_instruction(self):
        with pytest.raises(EncodingError):
            Instruction.decode_stream(b"\x07\x01\x00")

    def test_decode_rejects_truncated_ld_imm64(self):
        data = ld_imm64(1, 1).encode()[:8]
        with pytest.raises(EncodingError):
            Instruction.decode_stream(data)

    def test_encode_rejects_bad_register(self):
        with pytest.raises(EncodingError):
            Instruction(op.BPF_ALU64 | op.BPF_MOV | op.BPF_K, dst=12).encode()

    def test_opcode_layout_matches_kernel(self):
        # mov r1, 1 encodes to b7 01 00 00 01 00 00 00 (paper Fig. 4)
        assert mov64_imm(1, 1).encode() == bytes(
            [0xB7, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00]
        )

    def test_store_imm_u64_encoding(self):
        # movq $1, -0x40(r10): 7a 0a c0 ff 01 00 00 00 (paper Fig. 4)
        assert store_imm(8, op.R10, -0x40, 1).encode() == bytes(
            [0x7A, 0x0A, 0xC0, 0xFF, 0x01, 0x00, 0x00, 0x00]
        )

    def test_mov32_reg_encoding(self):
        # movl r0, r0: bc 00 (paper Fig. 8)
        insn = Instruction(op.BPF_ALU | op.BPF_MOV | op.BPF_X, dst=0, src=0)
        assert insn.encode()[0] == 0xBC

    @given(
        st.sampled_from(["add", "sub", "mul", "div", "or", "and", "lsh",
                         "rsh", "mod", "xor", "mov", "arsh"]),
        st.integers(0, 10),
        st.integers(-(2 ** 31), 2 ** 31 - 1),
    )
    def test_alu64_imm_roundtrip(self, name, dst, imm):
        insn = alu64(name, dst, imm=imm)
        assert Instruction.decode_stream(insn.encode()) == [insn]

    @given(st.integers(0, 2 ** 64 - 1), st.integers(0, 9))
    def test_ld_imm64_roundtrip(self, value, reg):
        insn = ld_imm64(reg, value)
        decoded = Instruction.decode_stream(insn.encode())
        assert decoded == [insn]
        assert decoded[0].imm == value

    @given(st.integers(-(2 ** 15), 2 ** 15 - 1))
    def test_jump_offset_roundtrip(self, off):
        insn = jump("jeq", 1, imm=0, off=off)
        assert Instruction.decode_stream(insn.encode())[0].off == off


class TestClassification:
    def test_alu64_vs_alu32(self):
        assert alu64("add", 1, imm=1).is_alu64
        assert alu32("add", 1, imm=1).is_alu32
        assert not alu32("add", 1, imm=1).is_alu64

    def test_memory_predicates(self):
        ld = load(4, 1, 2, 0)
        st_ = store_reg(4, 1, 0, 2)
        assert ld.is_load and not ld.is_store
        assert st_.is_store and not st_.is_load
        assert ld.is_memory and st_.is_memory

    def test_ld_imm64_is_not_a_memory_load(self):
        assert not ld_imm64(1, 5).is_load

    def test_atomic_classification(self):
        insn = atomic(8, op.BPF_ATOMIC_ADD, 1, 0, 2)
        assert insn.is_atomic and insn.is_store

    def test_store_imm_classification(self):
        assert store_imm(4, op.R10, -4, 7).is_store_imm

    def test_call_exit(self):
        assert call(1).is_call
        assert exit_().is_exit
        assert not call(1).is_exit

    def test_atomic_requires_word_size(self):
        with pytest.raises(EncodingError):
            atomic(2, op.BPF_ATOMIC_ADD, 1, 0, 2)

    def test_size_bytes(self):
        assert load(1, 0, 1).size_bytes == 1
        assert load(2, 0, 1).size_bytes == 2
        assert load(4, 0, 1).size_bytes == 4
        assert load(8, 0, 1).size_bytes == 8

    def test_size_bytes_on_alu_raises(self):
        with pytest.raises(EncodingError):
            _ = mov64_imm(0, 1).size_bytes


class TestUseDef:
    def test_mov_imm_defines_dst_uses_nothing(self):
        insn = mov64_imm(3, 7)
        assert insn.defs() == (3,)
        assert insn.uses() == ()

    def test_mov_reg_uses_src(self):
        insn = mov64_reg(3, 5)
        assert insn.defs() == (3,)
        assert insn.uses() == (5,)

    def test_add_reg_uses_both(self):
        insn = alu64("add", 2, src=4)
        assert set(insn.uses()) == {2, 4}
        assert insn.defs() == (2,)

    def test_add_imm_uses_dst_only(self):
        insn = alu64("add", 2, imm=1)
        assert insn.uses() == (2,)

    def test_neg_uses_dst(self):
        assert alu64("neg", 2).uses() == (2,)

    def test_load_uses_base_defines_dst(self):
        insn = load(4, 1, 7, 12)
        assert insn.uses() == (7,)
        assert insn.defs() == (1,)

    def test_store_reg_uses_both_defines_none(self):
        insn = store_reg(4, 7, 0, 1)
        assert set(insn.uses()) == {7, 1}
        assert insn.defs() == ()

    def test_store_imm_uses_base_only(self):
        assert store_imm(4, 7, 0, 1).uses() == (7,)

    def test_atomic_fetch_defines_src(self):
        insn = atomic(8, op.BPF_ATOMIC_ADD | op.BPF_FETCH, 1, 0, 2)
        assert insn.defs() == (2,)

    def test_atomic_nonfetch_defines_nothing(self):
        insn = atomic(8, op.BPF_ATOMIC_ADD, 1, 0, 2)
        assert insn.defs() == ()

    def test_call_defines_r0(self):
        assert call(1).defs() == (op.R0,)

    def test_exit_uses_r0(self):
        assert exit_().uses() == (op.R0,)

    def test_cond_jump_uses(self):
        assert jump("jeq", 1, src=2).uses() == (1, 2)
        assert jump("jeq", 1, imm=0).uses() == (1,)
        assert jump("ja").uses() == ()


class TestCounting:
    def test_ni_counts_ld_imm64_twice(self):
        insns = [mov64_imm(0, 0), ld_imm64(1, 2 ** 40), exit_()]
        assert ni(insns) == 4
        assert encoded_length(insns) == 32

    def test_jump32(self):
        insn = jump32("jlt", 1, imm=5, off=3)
        assert insn.insn_class == op.BPF_JMP32
        assert Instruction.decode_stream(insn.encode()) == [insn]
