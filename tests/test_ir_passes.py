"""Tests for Merlin's IR-tier passes."""

import pytest

from repro import ir
from repro.core import (
    AlignmentInferencePass,
    ConstantPropagationPass,
    DeadCodeEliminationPass,
    MacroOpFusionPass,
    SuperwordMergeIRPass,
    average_alignment,
)
from repro.ir import instructions as iri


def fresh():
    func = ir.Function("f", ir.I64, [ir.pointer(ir.I8)], ["ctx"])
    block = func.add_block("entry")
    return func, ir.IRBuilder(block)


class TestConstProp:
    def test_folds_arith(self):
        func, b = fresh()
        x = b.add(b.i64(2), b.i64(3))
        y = b.mul(x, b.i64(4))
        b.ret(y)
        ConstantPropagationPass().run(func)
        ret = func.entry.terminator
        assert isinstance(ret.value, ir.Constant)
        assert ret.value.value == 20

    def test_folds_narrow_wraparound(self):
        func, b = fresh()
        x = b.add(ir.Constant(ir.I8, 200), ir.Constant(ir.I8, 100))
        b.ret(b.zext(x, ir.I64))
        ConstantPropagationPass().run(func)
        DeadCodeEliminationPass().run(func)
        ret = func.entry.terminator
        assert ret.value.value == (200 + 100) % 256

    def test_identities(self):
        func, b = fresh()
        p = b.gep_const(func.args[0], 0, ir.I64)
        v = b.load(p, align=8)
        x = b.add(v, b.i64(0))
        y = b.mul(x, b.i64(1))
        z = b.or_(y, b.i64(0))
        b.ret(z)
        ConstantPropagationPass().run(func)
        assert func.entry.terminator.value is v

    def test_mul_by_zero(self):
        func, b = fresh()
        p = b.gep_const(func.args[0], 0, ir.I64)
        v = b.load(p, align=8)
        x = b.mul(v, b.i64(0))
        b.ret(x)
        ConstantPropagationPass().run(func)
        assert func.entry.terminator.value.value == 0

    def test_xor_self_is_zero(self):
        func, b = fresh()
        p = b.gep_const(func.args[0], 0, ir.I64)
        v = b.load(p, align=8)
        b.ret(b.xor(v, v))
        ConstantPropagationPass().run(func)
        assert func.entry.terminator.value.value == 0

    def test_folds_constant_branch(self):
        func, b = fresh()
        then = func.add_block("then")
        other = func.add_block("other")
        b.cbr(ir.Constant(ir.I1, 1), then, other)
        bt = ir.IRBuilder(then)
        bt.ret(bt.i64(1))
        bo = ir.IRBuilder(other)
        bo.ret(bo.i64(2))
        ConstantPropagationPass().run(func)
        DeadCodeEliminationPass().run(func)
        assert other not in func.blocks
        assert isinstance(func.entry.terminator, iri.Br)

    def test_division_by_zero_not_folded(self):
        func, b = fresh()
        x = b.udiv(b.i64(4), b.i64(0))
        b.ret(x)
        ConstantPropagationPass().run(func)
        assert isinstance(func.entry.terminator.value, iri.BinaryOp)

    def test_icmp_folding(self):
        func, b = fresh()
        c = b.icmp("slt", ir.Constant(ir.I32, 0xFFFFFFFF), ir.Constant(ir.I32, 0))
        b.ret(b.zext(c, ir.I64))
        ConstantPropagationPass().run(func)
        DeadCodeEliminationPass().run(func)
        assert func.entry.terminator.value.value == 1  # -1 s< 0

    def test_validates_after(self):
        func, b = fresh()
        x = b.add(b.i64(1), b.i64(2))
        y = b.shl(x, b.i64(3))
        b.ret(y)
        ConstantPropagationPass().run(func)
        DeadCodeEliminationPass().run(func)
        ir.validate_function(func)


class TestDCE:
    def test_removes_unused_values(self):
        func, b = fresh()
        p = b.gep_const(func.args[0], 0, ir.I64)
        v = b.load(p, align=8)
        b.add(v, b.i64(1))  # dead
        b.ret(v)
        removed = DeadCodeEliminationPass().run(func)
        assert removed >= 1
        assert all(not isinstance(i, iri.BinaryOp)
                   for i in func.entry.instructions)

    def test_keeps_side_effects(self):
        func, b = fresh()
        slot = b.alloca(ir.I64, align=8)
        b.store(b.i64(1), slot, align=8)
        v = b.load(slot, align=8)
        b.ret(v)
        DeadCodeEliminationPass().run(func)
        assert any(isinstance(i, iri.Store) for i in func.entry.instructions)

    def test_removes_writeonly_alloca(self):
        """Fig. 5's 'a = 0; // No usage. Eliminated.' case."""
        func, b = fresh()
        dead_slot = b.alloca(ir.I32, align=4)
        b.store(ir.Constant(ir.I32, 0), dead_slot, align=4)
        b.store(ir.Constant(ir.I32, 1), dead_slot, align=4)
        b.ret(b.i64(0))
        DeadCodeEliminationPass().run(func)
        assert not any(isinstance(i, (iri.Store, iri.Alloca))
                       for i in func.entry.instructions)

    def test_keeps_alloca_that_escapes(self):
        func, b = fresh()
        slot = b.alloca(ir.I64, align=8)
        b.store(b.i64(1), slot, align=8)
        b.call("map_lookup_elem", [ir.GlobalSymbol(ir.pointer(ir.I8), "m"),
                                   b.bitcast(slot, ir.pointer(ir.I8))],
               ir.pointer(ir.I64))
        b.ret(b.i64(0))
        DeadCodeEliminationPass().run(func)
        assert any(isinstance(i, iri.Store) for i in func.entry.instructions)

    def test_removes_unreachable_blocks(self):
        func, b = fresh()
        b.ret(b.i64(0))
        dead = func.add_block("dead")
        ir.IRBuilder(dead).unreachable()
        DeadCodeEliminationPass().run(func)
        assert dead not in func.blocks


class TestDAO:
    def test_raises_alignment_from_ctx_offset(self):
        func, b = fresh()
        p = b.gep_const(func.args[0], 0x24, ir.I16)
        load = iri.Load(p, align=1, name="v")
        func.entry.append(load)
        b.ret(b.zext(load, ir.I64))
        rewrites = AlignmentInferencePass().run(func)
        assert rewrites == 1
        assert load.align == 2

    def test_respects_misaligned_offset(self):
        func, b = fresh()
        p = b.gep_const(func.args[0], 0x25, ir.I16)
        load = iri.Load(p, align=1, name="v")
        func.entry.append(load)
        b.ret(b.zext(load, ir.I64))
        AlignmentInferencePass().run(func)
        assert load.align == 1

    def test_even_offset_u32_gets_align_2(self):
        func, b = fresh()
        p = b.gep_const(func.args[0], 6, ir.I32)
        load = iri.Load(p, align=1, name="v")
        func.entry.append(load)
        b.ret(b.zext(load, ir.I64))
        AlignmentInferencePass().run(func)
        assert load.align == 2

    def test_alloca_alignment_propagates(self):
        func, b = fresh()
        slot = b.alloca(ir.I64, align=8)
        narrow = b.bitcast(slot, ir.pointer(ir.I32))
        store = iri.Store(ir.Constant(ir.I32, 1), narrow, align=1)
        func.entry.append(store)
        b.ret(b.i64(0))
        AlignmentInferencePass().run(func)
        assert store.align == 4

    def test_map_value_pointer_assumed_aligned(self):
        func, b = fresh()
        value = b.call("map_lookup_elem",
                       [ir.GlobalSymbol(ir.pointer(ir.I8), "m"),
                        func.args[0]], ir.pointer(ir.I64))
        load = iri.Load(value, align=1, name="v")
        func.entry.append(load)
        b.ret(load)
        AlignmentInferencePass().run(func)
        assert load.align == 8

    def test_variable_gep_stays_unknown(self):
        func, b = fresh()
        p0 = b.gep_const(func.args[0], 0, ir.I64)
        idx = b.load(p0, align=8)
        p = b.gep(func.args[0], idx, ir.I16)
        load = iri.Load(p, align=1, name="v")
        func.entry.append(load)
        b.ret(b.zext(load, ir.I64))
        AlignmentInferencePass().run(func)
        assert load.align == 1

    def test_never_lowers_alignment(self):
        func, b = fresh()
        p = b.gep_const(func.args[0], 0x25, ir.I16)
        load = iri.Load(p, align=2, name="v")  # claimed higher than provable
        func.entry.append(load)
        b.ret(b.zext(load, ir.I64))
        AlignmentInferencePass().run(func)
        assert load.align == 2

    def test_average_alignment_reported(self):
        func, b = fresh()
        p = b.gep_const(func.args[0], 8, ir.I64)
        load = iri.Load(p, align=1, name="v")
        func.entry.append(load)
        b.ret(load)
        before = average_alignment(func)
        AlignmentInferencePass().run(func)
        after = average_alignment(func)
        assert after > before


class TestMacroFusion:
    def _rmw(self, b, func, op_name="add"):
        slot = b.alloca(ir.I64, align=8)
        loaded = b.load(slot, align=8)
        modified = b.binop(op_name, loaded, b.i64(3))
        b.store(modified, slot, align=8)
        return slot

    def test_fuses_rmw_triple(self):
        func, b = fresh()
        self._rmw(b, func)
        b.ret(b.i64(0))
        assert MacroOpFusionPass().run(func) == 1
        assert any(isinstance(i, iri.AtomicRMW)
                   for i in func.entry.instructions)
        assert not any(isinstance(i, iri.Store)
                       for i in func.entry.instructions)

    @pytest.mark.parametrize("op_name", ["add", "and", "or", "xor"])
    def test_fusible_ops(self, op_name):
        func, b = fresh()
        self._rmw(b, func, op_name)
        b.ret(b.i64(0))
        assert MacroOpFusionPass().run(func) == 1

    def test_sub_not_fused(self):
        func, b = fresh()
        self._rmw(b, func, "sub")
        b.ret(b.i64(0))
        assert MacroOpFusionPass().run(func) == 0

    def test_no_fusion_when_value_used_elsewhere(self):
        func, b = fresh()
        slot = b.alloca(ir.I64, align=8)
        loaded = b.load(slot, align=8)
        modified = b.add(loaded, b.i64(3))
        b.store(modified, slot, align=8)
        b.ret(modified)  # second use of the sum
        assert MacroOpFusionPass().run(func) == 0

    def test_no_fusion_across_intervening_store(self):
        func, b = fresh()
        slot = b.alloca(ir.I64, align=8)
        other = b.alloca(ir.I64, align=8)
        loaded = b.load(slot, align=8)
        b.store(b.i64(9), other, align=8)  # may alias in general
        modified = b.add(loaded, b.i64(3))
        b.store(modified, slot, align=8)
        b.ret(b.i64(0))
        assert MacroOpFusionPass().run(func) == 0

    def test_no_fusion_on_different_addresses(self):
        func, b = fresh()
        slot = b.alloca(ir.I64, align=8)
        other = b.alloca(ir.I64, align=8)
        loaded = b.load(slot, align=8)
        modified = b.add(loaded, b.i64(3))
        b.store(modified, other, align=8)
        b.ret(b.i64(0))
        assert MacroOpFusionPass().run(func) == 0

    def test_no_fusion_below_word_size(self):
        func, b = fresh()
        slot = b.alloca(ir.I16, align=2)
        loaded = b.load(slot, align=2)
        modified = b.add(loaded, ir.Constant(ir.I16, 1))
        b.store(modified, slot, align=2)
        b.ret(b.i64(0))
        assert MacroOpFusionPass().run(func) == 0

    def test_fusion_via_gep_addresses(self):
        func, b = fresh()
        slot = b.alloca(ir.ArrayType(ir.I64, 4), align=8)
        p1 = b.gep_const(slot, 8, ir.I64)
        p2 = b.gep_const(slot, 8, ir.I64)  # same address, distinct value
        loaded = b.load(p1, align=8)
        modified = b.add(loaded, b.i64(1))
        b.store(modified, p2, align=8)
        b.ret(b.i64(0))
        assert MacroOpFusionPass().run(func) == 1


class TestSuperwordIR:
    def test_merges_adjacent_u32_stores(self):
        func, b = fresh()
        slot = b.alloca(ir.I64, align=8)
        lo = b.bitcast(slot, ir.pointer(ir.I32))
        hi = b.gep_const(slot, 4, ir.I32)
        b.store(ir.Constant(ir.I32, 1), lo, align=4)
        b.store(ir.Constant(ir.I32, 0), hi, align=4)
        v = b.load(slot, align=8)
        b.ret(v)
        assert SuperwordMergeIRPass().run(func) == 1
        stores = [i for i in func.entry.instructions
                  if isinstance(i, iri.Store)]
        assert len(stores) == 1
        assert stores[0].value.type == ir.I64
        assert stores[0].value.value == 1  # little-endian combination

    def test_no_merge_when_misaligned(self):
        func, b = fresh()
        slot = b.alloca(ir.ArrayType(ir.I8, 16), align=8)
        a = b.gep_const(slot, 4, ir.I32)
        c = b.gep_const(slot, 8, ir.I32)
        b.store(ir.Constant(ir.I32, 1), a, align=4)
        b.store(ir.Constant(ir.I32, 2), c, align=4)
        b.ret(b.i64(0))
        # offset 4 is not 8-aligned: merged u64 store would be misaligned
        assert SuperwordMergeIRPass().run(func) == 0

    def test_no_merge_across_aliasing_load(self):
        func, b = fresh()
        slot = b.alloca(ir.I64, align=8)
        lo = b.bitcast(slot, ir.pointer(ir.I32))
        hi = b.gep_const(slot, 4, ir.I32)
        b.store(ir.Constant(ir.I32, 1), lo, align=4)
        b.load(slot, align=8, name="peek")
        b.store(ir.Constant(ir.I32, 0), hi, align=4)
        b.ret(b.i64(0))
        assert SuperwordMergeIRPass().run(func) == 0

    def test_merge_order_independent(self):
        # stores in descending address order still merge
        func, b = fresh()
        slot = b.alloca(ir.I64, align=8)
        lo = b.bitcast(slot, ir.pointer(ir.I32))
        hi = b.gep_const(slot, 4, ir.I32)
        b.store(ir.Constant(ir.I32, 7), hi, align=4)
        b.store(ir.Constant(ir.I32, 9), lo, align=4)
        v = b.load(slot, align=8)
        b.ret(v)
        assert SuperwordMergeIRPass().run(func) == 1
        stores = [i for i in func.entry.instructions
                  if isinstance(i, iri.Store)]
        assert stores[0].value.value == (7 << 32) | 9

    def test_semantic_preservation(self):
        from repro.codegen import compile_function
        from repro.vm import Machine

        def build():
            func, b = fresh()
            slot = b.alloca(ir.I64, align=8)
            lo = b.bitcast(slot, ir.pointer(ir.I32))
            hi = b.gep_const(slot, 4, ir.I32)
            b.store(ir.Constant(ir.I32, 0xAABB), lo, align=4)
            b.store(ir.Constant(ir.I32, 0x1122), hi, align=4)
            b.ret(b.load(slot, align=8))
            return func

        plain = compile_function(build(), ctx_size=64)
        merged_func = build()
        SuperwordMergeIRPass().run(merged_func)
        ir.validate_function(merged_func)
        merged = compile_function(merged_func, ctx_size=64)
        ctx = bytes(64)
        assert Machine(plain).run(ctx=ctx).return_value == \
            Machine(merged).run(ctx=ctx).return_value
