"""Assembler/disassembler tests, including roundtrip properties."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    AssemblerError,
    Instruction,
    assemble,
    disassemble,
    format_instruction,
)
from repro.isa import instruction as ins
from repro.isa import opcodes as op


class TestAssemble:
    def test_mov_imm(self):
        insns = assemble("r1 = 42")
        assert insns == [ins.mov64_imm(1, 42)]

    def test_mov_negative(self):
        assert assemble("r1 = -7")[0].imm == -7

    def test_mov_hex(self):
        assert assemble("r2 = 0xff")[0].imm == 255

    def test_mov_reg(self):
        assert assemble("r1 = r2") == [ins.mov64_reg(1, 2)]

    def test_alu32_forms(self):
        insns = assemble("w1 = 5\nw1 += w2")
        assert insns[0].is_alu32
        assert insns[1].is_alu32

    def test_ld_imm64(self):
        insns = assemble("r3 = 0xf0000000 ll")
        assert insns[0].is_ld_imm64
        assert insns[0].imm == 0xF0000000

    def test_compound_ops(self):
        text = "\n".join(
            f"r1 {sym} 3"
            for sym in ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                        "<<=", ">>=", "s>>="]
        )
        insns = assemble(text)
        assert len(insns) == 11
        assert all(i.is_alu64 for i in insns)

    def test_neg(self):
        assert assemble("r1 = -r1")[0].alu_op == op.BPF_NEG

    def test_load_store(self):
        insns = assemble(
            "r1 = *(u32 *)(r2 + 8)\n*(u64 *)(r10 - 16) = r1"
        )
        assert insns[0] == ins.load(4, 1, 2, 8)
        assert insns[1] == ins.store_reg(8, 10, -16, 1)

    def test_store_imm(self):
        assert assemble("*(u16 *)(r1 + 0) = 9")[0] == ins.store_imm(2, 1, 0, 9)

    def test_atomic_add(self):
        insn = assemble("lock *(u64 *)(r1 + 8) += r2")[0]
        assert insn.is_atomic
        assert insn.imm == op.BPF_ATOMIC_ADD

    def test_atomic_fetch(self):
        insn = assemble("r2 = lock *(u64 *)(r1 + 8) += r2")[0]
        assert insn.imm == (op.BPF_ATOMIC_ADD | op.BPF_FETCH)

    def test_numeric_branch_offsets(self):
        insn = assemble("if r1 == 0 goto +2")[0]
        assert insn.off == 2

    def test_labels_forward_and_backward(self):
        insns = assemble("""
        start:
            r1 += 1
            if r1 < 10 goto start
            goto done
            r0 = 1
        done:
            exit
        """)
        assert insns[1].off == -2  # back to start
        assert insns[2].off == 1  # skip r0 = 1

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("x:\nr0 = 0\nx:\nexit")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("goto nowhere")

    def test_garbage_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("this is not bpf")

    def test_comments_ignored(self):
        insns = assemble("r0 = 0 ; a comment\nexit // another")
        assert len(insns) == 2

    def test_call_and_exit(self):
        insns = assemble("call 1\nexit")
        assert insns[0].is_call and insns[0].imm == 1
        assert insns[1].is_exit

    def test_byteswap(self):
        insn = assemble("r1 = be16 r1")[0]
        assert insn.alu_op == op.BPF_END
        assert insn.imm == 16

    def test_jump32(self):
        insn = assemble("if w1 < 5 goto +1")[0]
        assert insn.insn_class == op.BPF_JMP32


class TestRoundtrip:
    SAMPLE = """
        r6 = r1
        r2 = *(u64 *)(r1 + 0)
        r3 = 0xf0000000 ll
        r2 &= r3
        w4 = w2
        if r2 != 42 goto +3
        *(u64 *)(r10 - 8) = 1
        lock *(u64 *)(r1 + 16) += r2
        r0 = 2
        exit
    """

    def test_disassemble_reassemble(self):
        insns = assemble(self.SAMPLE)
        text = disassemble(insns)
        again = assemble(text)
        assert again == insns

    @given(st.integers(0, 9), st.integers(-100, 100))
    def test_format_parse_mov(self, reg, imm):
        insn = ins.mov64_imm(reg, imm)
        assert assemble(format_instruction(insn)) == [insn]

    @given(
        st.sampled_from([1, 2, 4, 8]),
        st.integers(0, 9),
        st.integers(0, 10),
        st.integers(-256, 256),
    )
    def test_format_parse_load(self, size, dst, src, off):
        insn = ins.load(size, dst, src, off)
        assert assemble(format_instruction(insn)) == [insn]
