"""Tnum tests, including hypothesis soundness properties.

The key property of every tnum operation: if x is in A and y is in B,
then op(x, y) must be contained in A.op(B).
"""

import pytest
from hypothesis import given, strategies as st

from repro.verifier import Tnum

U64 = (1 << 64) - 1


def tnums():
    """Strategy: arbitrary tnums (value/mask non-overlapping)."""
    return st.builds(
        lambda v, m: Tnum(v & ~m & U64, m & U64),
        st.integers(0, U64),
        st.integers(0, U64),
    )


def member_of(tnum):
    """Strategy: one concrete member of *tnum*."""
    return st.integers(0, U64).map(
        lambda r: (tnum.value | (r & tnum.mask)) & U64
    )


class TestBasics:
    def test_const(self):
        t = Tnum.const(42)
        assert t.is_const and t.value == 42
        assert t.contains(42) and not t.contains(43)

    def test_unknown_contains_everything(self):
        t = Tnum.unknown()
        assert t.contains(0) and t.contains(U64)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            Tnum(1, 1)

    def test_range(self):
        t = Tnum.range(4, 7)
        for x in (4, 5, 6, 7):
            assert t.contains(x)
        assert t.umin <= 4 and t.umax >= 7

    def test_umin_umax(self):
        t = Tnum(0b1000, 0b0011)
        assert t.umin == 8
        assert t.umax == 11

    def test_cast_truncates(self):
        t = Tnum.const(0x1FF).cast(1)
        assert t.value == 0xFF

    def test_subset(self):
        small = Tnum.const(5)
        big = Tnum(4, 1)  # {4, 5}
        assert small.is_subset_of(big)
        assert not big.is_subset_of(small)


class TestArithmetic:
    def test_const_add(self):
        assert Tnum.const(3).add(Tnum.const(4)) == Tnum.const(7)

    def test_const_sub(self):
        assert Tnum.const(10).sub(Tnum.const(4)) == Tnum.const(6)

    def test_const_mul(self):
        assert Tnum.const(6).mul(Tnum.const(7)) == Tnum.const(42)

    def test_shift_consts(self):
        assert Tnum.const(1).lshift(4) == Tnum.const(16)
        assert Tnum.const(16).rshift(4) == Tnum.const(1)

    def test_and_known_zeros(self):
        t = Tnum.unknown().and_(Tnum.const(0xFF))
        assert t.umax <= 0xFF

    def test_or_known_ones(self):
        t = Tnum.unknown().or_(Tnum.const(0x80))
        assert t.umin >= 0  # sound but weak; known bit must be set
        assert t.value & 0x80 or t.mask & 0x80 == 0

    def test_intersect_of_const_and_unknown(self):
        t = Tnum.unknown().intersect(Tnum.const(9))
        assert t == Tnum.const(9)

    def test_union_covers_both(self):
        t = Tnum.const(4).union(Tnum.const(6))
        assert t.contains(4) and t.contains(6)


# --- soundness properties ----------------------------------------------------

@given(st.data(), tnums(), tnums())
def test_add_sound(data, a, b):
    x = data.draw(member_of(a))
    y = data.draw(member_of(b))
    assert a.add(b).contains((x + y) & U64)


@given(st.data(), tnums(), tnums())
def test_sub_sound(data, a, b):
    x = data.draw(member_of(a))
    y = data.draw(member_of(b))
    assert a.sub(b).contains((x - y) & U64)


@given(st.data(), tnums(), tnums())
def test_and_sound(data, a, b):
    x = data.draw(member_of(a))
    y = data.draw(member_of(b))
    assert a.and_(b).contains(x & y)


@given(st.data(), tnums(), tnums())
def test_or_sound(data, a, b):
    x = data.draw(member_of(a))
    y = data.draw(member_of(b))
    assert a.or_(b).contains(x | y)


@given(st.data(), tnums(), tnums())
def test_xor_sound(data, a, b):
    x = data.draw(member_of(a))
    y = data.draw(member_of(b))
    assert a.xor(b).contains(x ^ y)


@given(st.data(), tnums(), st.integers(0, 63))
def test_shifts_sound(data, a, shift):
    x = data.draw(member_of(a))
    assert a.lshift(shift).contains((x << shift) & U64)
    assert a.rshift(shift).contains(x >> shift)


@given(st.data(), tnums(), tnums())
def test_mul_sound(data, a, b):
    x = data.draw(member_of(a))
    y = data.draw(member_of(b))
    assert a.mul(b).contains((x * y) & U64)


@given(st.data(), tnums())
def test_cast_sound(data, a):
    x = data.draw(member_of(a))
    assert a.cast(4).contains(x & 0xFFFFFFFF)


@given(st.data(), tnums(), tnums())
def test_union_sound(data, a, b):
    x = data.draw(member_of(a))
    assert a.union(b).contains(x)


@given(st.integers(0, U64), st.integers(0, U64))
def test_range_contains_endpoints(lo, hi):
    lo, hi = min(lo, hi), max(lo, hi)
    t = Tnum.range(lo, hi)
    assert t.contains(lo) and t.contains(hi)


@given(st.data(), tnums())
def test_umin_umax_bound_members(data, a):
    x = data.draw(member_of(a))
    assert a.umin <= x <= a.umax


# --- edge cases, cross-checked against concrete enumeration ------------------

def members(t):
    """Every concrete value of *t* (mask popcount must be small)."""
    bits = [1 << i for i in range(64) if t.mask >> i & 1]
    values = [t.value]
    for bit in bits:
        values += [v | bit for v in values]
    return values


def small_tnums(width=3):
    """All tnums confined to the low *width* bits."""
    out = []
    for mask in range(1 << width):
        for value in range(1 << width):
            if value & mask == 0:
                out.append(Tnum(value, mask))
    return out


_BINOPS = [
    ("add", lambda x, y: (x + y) & U64),
    ("sub", lambda x, y: (x - y) & U64),
    ("mul", lambda x, y: (x * y) & U64),
    ("and_", lambda x, y: x & y),
    ("or_", lambda x, y: x | y),
    ("xor", lambda x, y: x ^ y),
]


@pytest.mark.parametrize("name,concrete", _BINOPS, ids=[n for n, _ in _BINOPS])
def test_binop_sound_exhaustive_small(name, concrete):
    """Soundness by *complete* enumeration on 3-bit tnums: hypothesis
    samples members, this leaves nothing to sampling luck."""
    universe = small_tnums(3)
    for a in universe:
        for b in universe:
            result = getattr(a, name)(b)
            for x in members(a):
                for y in members(b):
                    assert result.contains(concrete(x, y)), (a, b, x, y)


class TestShiftEdges:
    def test_shift_by_64_is_identity(self):
        # the kernel reduces shift amounts mod 64 (BPF semantics);
        # shifting by 64 must not silently become "result is 0"
        t = Tnum(0b1000, 0b0011)
        assert t.lshift(64) == t
        assert t.rshift(64) == t

    def test_shift_past_64_wraps(self):
        assert Tnum.const(5).lshift(65) == Tnum.const(10)
        assert Tnum.const(4).rshift(66) == Tnum.const(1)

    def test_lshift_63_overflow_drops_high_bits(self):
        assert Tnum.const(3).lshift(63) == Tnum.const(1 << 63)

    @given(st.data(), tnums(), st.integers(0, 200))
    def test_any_shift_amount_sound(self, data, a, shift):
        x = data.draw(member_of(a))
        assert a.lshift(shift).contains((x << (shift % 64)) & U64)
        assert a.rshift(shift).contains(x >> (shift % 64))


class TestFullUnknown:
    def test_unknown_absorbs_arithmetic(self):
        u = Tnum.unknown()
        for op in ("add", "sub", "xor", "or_"):
            assert getattr(u, op)(u) == u

    def test_unknown_and_const_zero(self):
        assert Tnum.unknown().and_(Tnum.const(0)) == Tnum.const(0)

    def test_unknown_and_keeps_known_zeros(self):
        t = Tnum.unknown().and_(Tnum.const(0xF0))
        for x in range(256):
            assert t.contains(x & 0xF0)

    def test_unknown_mul_sound_on_samples(self):
        u = Tnum.unknown()
        product = u.mul(u)
        for x, y in [(0, 0), (1, U64), (U64, U64), (1 << 63, 2)]:
            assert product.contains((x * y) & U64)


class TestMulOverflow:
    def test_mul_wraps_at_64_bits(self):
        assert Tnum.const(1 << 63).mul(Tnum.const(2)) == Tnum.const(0)

    def test_mul_minus_one_squared(self):
        assert Tnum.const(U64).mul(Tnum.const(U64)) == Tnum.const(1)

    def test_mul_high_uncertain_bit_overflow(self):
        # {0, 2^63} * 2: both members wrap to 0
        a = Tnum(0, 1 << 63)
        assert a.mul(Tnum.const(2)).contains(0)

    @given(st.data(), tnums(), tnums())
    def test_mul_sound_near_overflow(self, data, a, b):
        # bias members toward the top of the range by setting high bits
        x = data.draw(member_of(a)) | (1 << 63)
        y = data.draw(member_of(b)) | (1 << 62)
        shifted_a = a.or_(Tnum.const(1 << 63))
        shifted_b = b.or_(Tnum.const(1 << 62))
        assert shifted_a.mul(shifted_b).contains((x * y) & U64)
