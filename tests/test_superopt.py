"""The caching superoptimizer tier: canonicalization, search, memo
replay, site certification, and end-to-end behaviour preservation.

The tier's soundness story is layered and these tests attack each
layer: canonicalization must be a sound renaming (hypothesis round-
trips it), the search must be a pure function of (window, spec) so
memo replay is byte-identical to a cold search, and — the backstop —
every rewrite must re-certify at the apply site, so even a poisoned
memo entry can only waste a lookup, never change behaviour.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import CompilationCache
from repro.cache.keys import key_for_window
from repro.core import MerlinPipeline
from repro.core.superopt import (
    MEMO_SCHEMA,
    RewriteMemoEntry,
    SuperoptSpec,
    SuperoptimizerPass,
    UncanonicalError,
    canonicalize_window,
    certify_rewrite,
    fold_constant_pair,
    instantiate,
    merge_store_imm,
    narrow_ld_imm64,
    search_window,
    validate_memo_entry,
    window_supported,
)
from repro.fuzz.differential import observe_baseline
from repro.fuzz.generator import LAYERS, generate
from repro.fuzz.oracle import generate_tests, observe_battery
from repro.isa import BpfProgram, assemble
from repro.isa import instruction as ins
from repro.verifier import DEFAULT_KERNEL, verify
from repro.workloads.xdp import BY_NAME, compile_workload

SPEC = SuperoptSpec()


def run_pass(program, spec=SPEC, memo=None):
    """Run the pass on a copy; returns (program, pass, witnesses)."""
    from repro.tv import WitnessRecorder

    copied = program.copy()
    superopt = SuperoptimizerPass(spec, memo=memo)
    recorder = WitnessRecorder()
    superopt.recorder = recorder
    superopt.run(copied)
    return copied, superopt, recorder.witnesses


class TestSpec:
    def test_round_trip(self):
        spec = SuperoptSpec(window=3, iterations=7, seed=99)
        assert SuperoptSpec.from_dict(spec.to_dict()) == spec

    def test_fingerprints(self):
        spec = SuperoptSpec(window=3, iterations=7, seed=99)
        assert "window=3" in spec.fingerprint()
        # the search fingerprint deliberately omits the window length:
        # a canonical window's search outcome does not depend on it
        assert "window" not in spec.search_fingerprint()

    def test_pipeline_normalization(self):
        norm = MerlinPipeline._superopt_spec
        assert norm(None) is None
        assert norm(False) is None
        assert norm(True) == SuperoptSpec()
        assert norm({"window": 2}) == SuperoptSpec(window=2)
        spec = SuperoptSpec(seed=5)
        assert norm(spec) is spec


class TestCanonicalization:
    def test_register_permutation_shares_memo_key(self):
        a = [ins.mov64_reg(1, 2), ins.alu64("add", 1, src=1)]
        b = [ins.mov64_reg(3, 5), ins.alu64("add", 3, src=3)]
        ca, _, _ = canonicalize_window(a)
        cb, _, _ = canonicalize_window(b)
        assert ca == cb
        assert key_for_window(ca) == key_for_window(cb)

    def test_stack_offset_shift_shares_memo_key(self):
        a = [ins.mov64_imm(1, 3), ins.store_reg(8, 10, -8, 1)]
        b = [ins.mov64_imm(4, 3), ins.store_reg(8, 10, -256, 4)]
        ca, _, da = canonicalize_window(a)
        cb, _, db = canonicalize_window(b)
        assert ca == cb
        assert da == {10: -8} and db == {10: -256}
        assert key_for_window(ca) == key_for_window(cb)

    def test_redefined_base_not_rebased(self):
        window = [ins.mov64_reg(1, 2), ins.load(8, 3, 1, 40)]
        canonical, _, deltas = canonicalize_window(window)
        # r1 is defined inside the window: rebasing its offset would
        # conflate different absolute addresses
        assert deltas == {}
        assert canonical[1].off == 40

    def test_unsupported_windows_rejected(self):
        assert not window_supported([ins.exit_()])
        assert not window_supported([ins.jump("ja", off=1)])
        assert not window_supported([ins.call(1)])
        assert not window_supported([ins.ld_imm64(1, 3, src=1)])  # map fd
        with pytest.raises(UncanonicalError):
            canonicalize_window([ins.exit_()])

    def test_rebased_offset_overflow_rejected(self):
        window = [ins.load(1, 2, 1, -(1 << 15)),
                  ins.load(1, 3, 1, (1 << 15) - 1)]
        with pytest.raises(UncanonicalError):
            canonicalize_window(window)

    def test_instantiate_rejects_foreign_register(self):
        window = [ins.mov64_imm(1, 3)]
        _, rename, deltas = canonicalize_window(window)
        with pytest.raises(UncanonicalError):
            instantiate([ins.mov64_reg(0, 7)], rename, deltas)

    @given(st.integers(0, 10_000), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, seed, length):
        """instantiate(canonicalize(w)) == w for arbitrary supported
        windows: canonicalization is a lossless renaming."""
        rng = random.Random(seed)
        window = []
        for _ in range(length):
            roll = rng.random()
            dst = rng.randrange(0, 10)
            src = rng.randrange(0, 10)
            if roll < 0.3:
                window.append(ins.mov64_imm(dst, rng.randrange(0, 1 << 10)))
            elif roll < 0.5:
                window.append(ins.alu64(rng.choice(["add", "and", "xor"]),
                                        dst, src=src))
            elif roll < 0.7:
                window.append(ins.load(rng.choice([1, 2, 4, 8]), dst, src,
                                       rng.randrange(-64, 64)))
            else:
                window.append(ins.store_reg(8, 10,
                                            -8 * rng.randrange(1, 8), src))
        canonical, rename, deltas = canonicalize_window(window)
        assert instantiate(canonical, rename, deltas) == window
        # canonicalizing the canonical form is a fixed point
        again, _, _ = canonicalize_window(canonical)
        assert again == canonical


class TestSearch:
    def test_deterministic(self):
        canonical, _, _ = canonicalize_window(
            [ins.mov64_imm(0, 10), ins.alu64("add", 0, imm=5)])
        a = search_window(canonical, SPEC)
        b = search_window(canonical, SPEC)
        assert a == b

    def test_identity_add_dropped(self):
        canonical, _, _ = canonicalize_window([ins.alu64("add", 1, imm=0)])
        entry = search_window(canonical, SPEC)
        assert entry.found
        assert entry.rewrite == () and entry.clobbered == ()

    def test_ld_imm64_narrowed(self):
        canonical, _, _ = canonicalize_window([ins.ld_imm64(1, 5)])
        entry = search_window(canonical, SPEC)
        assert entry.found
        assert ins.ni(entry.rewrite) < 2

    def test_constant_pair_folds(self):
        folded = fold_constant_pair(ins.mov64_imm(1, 10),
                                    ins.alu64("add", 1, imm=5))
        assert folded == ins.mov64_imm(1, 15)
        assert fold_constant_pair(ins.mov64_imm(1, 10),
                                  ins.alu64("add", 2, imm=5)) is None

    def test_store_imm_pair_merges(self):
        merged = merge_store_imm(ins.store_imm(2, 10, -8, 1),
                                 ins.store_imm(2, 10, -6, 2))
        assert merged == ins.store_imm(4, 10, -8, 0x0002_0001)
        # misaligned double-width result is refused (verifier alignment)
        assert merge_store_imm(ins.store_imm(2, 10, -6, 1),
                               ins.store_imm(2, 10, -4, 2)) is None
        # a combined value that does not sign-extend from s32 is refused
        assert merge_store_imm(ins.store_imm(4, 10, -8, 1),
                               ins.store_imm(4, 10, -4, 2)) is None
        canonical, _, _ = canonicalize_window(
            [ins.store_imm(2, 10, -8, 1), ins.store_imm(2, 10, -6, 2)])
        entry = search_window(canonical, SPEC)
        assert entry.found
        assert entry.clobbered == ()
        assert len(entry.rewrite) == 1 and entry.rewrite[0].is_store_imm

    def test_narrow_ld_imm64_range(self):
        assert narrow_ld_imm64(ins.ld_imm64(1, -7)) == ins.mov64_imm(1, -7)
        assert narrow_ld_imm64(ins.ld_imm64(1, 1 << 40)) is None

    def test_negative_result_memoized(self):
        canonical, _, _ = canonicalize_window(
            [ins.store_reg(8, 10, -8, 1)])
        entry = search_window(canonical, SPEC)
        assert not entry.found
        assert entry.rewrite is None

    def test_rewrites_certify(self):
        """Every positive search outcome re-certifies standalone."""
        windows = [
            [ins.alu64("add", 1, imm=0)],
            [ins.ld_imm64(2, 5)],
            [ins.mov64_imm(1, 10), ins.alu64("add", 1, imm=5)],
            [ins.store_imm(2, 10, -8, 1), ins.store_imm(2, 10, -6, 2)],
        ]
        for window in windows:
            canonical, _, _ = canonicalize_window(window)
            entry = search_window(canonical, SPEC)
            assert entry.found, window
            clobbers = certify_rewrite(canonical, entry.rewrite,
                                       seed=SPEC.seed)
            assert clobbers is not None, window


@pytest.fixture(scope="module")
def xdp2():
    return compile_workload(BY_NAME["xdp2"])


class TestPass:
    def test_shrinks_and_verifies(self, xdp2):
        merlin, _ = MerlinPipeline().optimize_program(xdp2)
        superopted, superopt, witnesses = run_pass(merlin)
        assert superopted.ni <= merlin.ni
        assert verify(superopted, DEFAULT_KERNEL).ok
        assert superopt.counters["applied"] == len(witnesses)

    def test_all_witnesses_certified(self, xdp2):
        from repro.tv.regioncheck import validate_bytecode_witness

        merlin, _ = MerlinPipeline().optimize_program(xdp2)
        _, superopt, witnesses = run_pass(merlin)
        assert superopt.counters["applied"] > 0
        assert len(witnesses) == superopt.counters["applied"]
        for witness in witnesses:
            assert validate_bytecode_witness(witness).certified

    def test_behavior_identical_both_engines(self, xdp2):
        superopted, _, _ = run_pass(xdp2)
        tests = generate_tests(xdp2, count=6, seed=11)
        for engine in ("reference", "fast"):
            before = observe_battery(xdp2, tests, seed=11, engine=engine)
            after = observe_battery(superopted, tests, seed=11,
                                    engine=engine)
            for a, b in zip(before, after):
                assert a.fault == b.fault
                assert a.return_value == b.return_value
                assert a.state == b.state

    def test_pipeline_compile_wiring(self):
        from repro import compile_bpf, optimize

        source = """
        u64 f(u8* ctx) {
            u64 a = *(u64*)(ctx + 0);
            return a + 1 + 2 + 3;
        }
        """
        module = compile_bpf(source)
        plain, _ = optimize(module, "f", ctx_size=64)
        tuned, report = optimize(module, "f", ctx_size=64, superopt=True)
        names = [stat.name for stat in report.pass_stats]
        assert "superopt" in names
        stat = report.pass_stats[names.index("superopt")]
        assert stat.details["windows"] > 0
        assert tuned.ni <= plain.ni


class TestMemoReplay:
    def test_warm_replay_skips_search(self, xdp2):
        memo = CompilationCache()
        cold, cold_pass, _ = run_pass(xdp2, memo=memo)
        assert cold_pass.counters["searches"] > 0
        warm, warm_pass, _ = run_pass(xdp2, memo=memo)
        # every window replays from the memo: zero searches, and the
        # output is byte-identical to the cold search
        assert warm_pass.counters["searches"] == 0
        assert warm_pass.counters["memo_hits"] > 0
        assert warm.insns == cold.insns

    def test_memo_replays_across_programs(self):
        memo = CompilationCache()
        a = BpfProgram("a", assemble(
            "r1 = 10\nr1 += 5\nr0 = r1\nexit"))
        b = BpfProgram("b", assemble(
            "r3 = 10\nr3 += 5\nr0 = r3\nexit"))  # same shape, new regs
        _, pass_a, _ = run_pass(a, memo=memo)
        _, pass_b, _ = run_pass(b, memo=memo)
        assert pass_a.counters["searches"] > 0
        assert pass_b.counters["searches"] == 0
        assert pass_b.counters["memo_hits"] > 0

    def test_disk_memo_shared_between_instances(self, tmp_path, xdp2):
        cold_cache = CompilationCache(directory=str(tmp_path))
        cold, _, _ = run_pass(xdp2, memo=cold_cache)
        # a fresh cache handle on the same directory (a new process in
        # real deployments) replays without searching
        warm_cache = CompilationCache(directory=str(tmp_path))
        warm, warm_pass, _ = run_pass(xdp2, memo=warm_cache)
        assert warm_pass.counters["searches"] == 0
        assert warm.insns == cold.insns


class TestAdversarialMemo:
    def test_truncated_disk_entry_falls_back_to_search(self, tmp_path,
                                                       xdp2):
        import os

        cache = CompilationCache(directory=str(tmp_path))
        reference, _, _ = run_pass(xdp2, memo=cache)
        for root, _dirs, files in os.walk(tmp_path):
            for name in files:
                path = os.path.join(root, name)
                with open(path, "rb") as handle:
                    blob = handle.read()
                with open(path, "wb") as handle:
                    handle.write(blob[:max(1, len(blob) // 2)])
        fresh = CompilationCache(directory=str(tmp_path))
        out, superopt, _ = run_pass(xdp2, memo=fresh)
        assert fresh.stats.read_errors > 0
        assert superopt.counters["searches"] > 0
        assert out.insns == reference.insns

    def test_wrong_type_entry_rejected(self, xdp2):
        memo = CompilationCache()
        reference, _, _ = run_pass(xdp2, memo=memo)
        # overwrite every memoized outcome with a wrong-typed object
        for key in list(memo._memory):
            memo.put_object(key, "garbage")
        out, superopt, _ = run_pass(xdp2, memo=memo)
        # every poisoned key is rejected once, re-searched, and the
        # repaired entry written back (hits after that are legitimate)
        assert superopt.counters["memo_invalid"] >= 1
        assert superopt.counters["searches"] >= \
            superopt.counters["memo_invalid"]
        assert out.insns == reference.insns

    def test_poisoned_rewrite_rejected_at_site(self, xdp2):
        """A structurally valid memo entry whose rewrite is semantic
        garbage: site certification refuses it and behaviour is the
        no-memo reference, bit for bit."""
        memo = CompilationCache()
        reference, reference_pass, _ = run_pass(xdp2, memo=memo)
        poisoned = 0
        for key in list(memo._memory):
            entry = memo.get_object(key)
            if isinstance(entry, RewriteMemoEntry) and len(
                    entry.canonical) >= 1:
                memo.put_object(key, RewriteMemoEntry(
                    MEMO_SCHEMA, entry.canonical,
                    (ins.mov64_imm(0, 0x7ea5),), (), entry.searched,
                    entry.search))
                poisoned += 1
        assert poisoned > 0
        out, superopt, _ = run_pass(xdp2, memo=memo)
        assert superopt.counters["site_rejects"] > 0
        tests = generate_tests(xdp2, count=6, seed=3)
        for engine in ("reference", "fast"):
            a = observe_battery(xdp2, tests, seed=3, engine=engine)
            b = observe_battery(out, tests, seed=3, engine=engine)
            for lhs, rhs in zip(a, b):
                assert lhs.fault == rhs.fault
                assert lhs.return_value == rhs.return_value
                assert lhs.state == rhs.state

    def test_validate_memo_entry_screens(self):
        canonical, _, _ = canonicalize_window([ins.alu64("add", 1, imm=0)])
        fingerprint = SPEC.search_fingerprint()
        good = RewriteMemoEntry(MEMO_SCHEMA, canonical, (), (), 1,
                                fingerprint)
        assert validate_memo_entry(good, canonical, fingerprint)
        assert not validate_memo_entry("junk", canonical, fingerprint)
        assert not validate_memo_entry(
            RewriteMemoEntry(MEMO_SCHEMA + 1, canonical, (), (), 1,
                             fingerprint), canonical, fingerprint)
        assert not validate_memo_entry(
            RewriteMemoEntry(MEMO_SCHEMA, canonical, (), (), 1, "other"),
            canonical, fingerprint)
        other, _, _ = canonicalize_window([ins.mov64_imm(0, 1)])
        assert not validate_memo_entry(good, other, fingerprint)
        assert not validate_memo_entry(
            RewriteMemoEntry(MEMO_SCHEMA, canonical, ("junk",), (), 1,
                             fingerprint), canonical, fingerprint)
        assert not validate_memo_entry(
            RewriteMemoEntry(MEMO_SCHEMA, canonical,
                             (ins.mov64_imm(0, 1),), (10,), 1,
                             fingerprint), canonical, fingerprint)


class TestPropertySweep:
    """The generated-program sweep: superopt output must match baseline
    behaviour on the observation oracle under both VM engines, with
    every rewrite certified, and the shared warm memo must replay to
    byte-identical programs (cached == fresh).

    The budget defaults to a fast-tier slice; the CI ``superopt`` job
    sets ``REPRO_SWEEP_BUDGET=200`` for the full fixed-seed
    certification sweep."""

    SEED = 77

    @staticmethod
    def budget() -> int:
        import os

        return int(os.environ.get("REPRO_SWEEP_BUDGET", "40"))

    def test_sweep(self):
        from repro.fuzz.oracle import first_divergence
        from repro.tv.regioncheck import validate_bytecode_witness

        budget = self.budget()
        memo = CompilationCache()
        checked = 0
        memo_hits = 0
        for index in range(budget):
            layer = LAYERS[index % len(LAYERS)]
            case = generate(layer, self.SEED * 1_000_003 + index)
            try:
                baseline = observe_baseline(case, DEFAULT_KERNEL, 3)
            except Exception:
                continue  # toolchain rejected the program outright
            checked += 1

            # cold search: behaviour preserved under both engines and
            # 100% of applied rewrites carry a certified witness
            cold, cold_pass, witnesses = run_pass(baseline.program)
            assert len(witnesses) == cold_pass.counters["applied"]
            for witness in witnesses:
                cert = validate_bytecode_witness(witness)
                assert cert.certified, (index, cert.detail)
            for engine in ("reference", "fast"):
                before = observe_battery(baseline.program, baseline.tests,
                                         seed=baseline.oracle_seed,
                                         engine=engine)
                after = observe_battery(cold, baseline.tests,
                                        seed=baseline.oracle_seed,
                                        engine=engine)
                assert first_divergence(before, after) is None, \
                    (index, engine)

            # cached == fresh: a memo shared across the whole sweep
            # must reproduce the fresh pass bit for bit
            cached, cached_pass, _ = run_pass(baseline.program, memo=memo)
            assert cached.insns == cold.insns, index
            memo_hits += cached_pass.counters["memo_hits"]
        assert checked >= budget * 3 // 4
        # generated programs share window shapes: the sweep-wide memo
        # must actually replay (warm lookups that skipped the search)
        assert memo_hits > 0
