"""Unit tests for the translation validator's expression domain."""

import pytest

from repro.tv.expr import (
    Const,
    Op,
    Sym,
    const,
    evaluate,
    expr_tnum,
    mkop,
    normalize_deep,
    prove_equal,
    sample_envs,
    support_masks,
    symbols_of,
    tnum_decide,
)

pytestmark = pytest.mark.tv

U64 = (1 << 64) - 1
U32 = (1 << 32) - 1
X = Sym(("r", 1))
Y = Sym(("r", 2))


class TestEvaluate:
    def test_div_by_zero_is_zero(self):
        assert evaluate(mkop("div", 64, Const(9), Const(0)), {}) == 0

    def test_mod_by_zero_keeps_value(self):
        assert evaluate(mkop("mod", 64, Const(9), Const(0)), {}) == 9

    def test_shift_amount_mod_width(self):
        assert evaluate(mkop("lsh", 32, Const(1), Const(33)), {}) == 2
        assert evaluate(mkop("lsh", 64, Const(1), Const(65)), {}) == 2

    def test_alu32_zero_extends(self):
        # 32-bit add wraps at 2**32 and clears the upper half
        got = evaluate(mkop("add", 32, X, Const(1)), {X: U64})
        assert got == 0

    def test_arsh_is_signed(self):
        got = evaluate(mkop("arsh", 64, Const(1 << 63), Const(63)), {})
        assert got == U64

    def test_sub_wraps(self):
        assert evaluate(mkop("sub", 64, Const(0), Const(1)), {}) == U64

    def test_env_lookup(self):
        assert evaluate(mkop("xor", 64, X, Y), {X: 0xFF, Y: 0x0F}) == 0xF0


class TestNormalize:
    def test_const_folding(self):
        assert mkop("add", 64, Const(2), Const(3)) == Const(5)

    def test_commutative_const_right(self):
        assert mkop("add", 64, Const(3), X) == mkop("add", 64, X, Const(3))

    def test_neutral_element_64(self):
        assert mkop("add", 64, X, Const(0)) == X
        assert mkop("or", 64, X, Const(0)) == X
        assert mkop("and", 64, X, Const(U64)) == X

    def test_no_neutral_element_32(self):
        # x add32 0 truncates x, so it must NOT collapse to x
        assert mkop("add", 32, X, Const(0)) != X

    def test_add_chain_collects_constants(self):
        chained = mkop("add", 64, mkop("add", 64, X, Const(3)), Const(4))
        assert chained == mkop("add", 64, X, Const(7))

    def test_and_chain_merges_masks(self):
        chained = mkop("and", 64, mkop("and", 64, X, Const(0xFF)),
                       Const(0xF0))
        assert chained == mkop("and", 64, X, Const(0xF0))

    def test_zero_extension_idiom(self):
        # shl 32 / shr 32 == and with the low-word mask (the CC rewrite)
        shifts = mkop("rsh", 64, mkop("lsh", 64, X, Const(32)), Const(32))
        assert shifts == mkop("and", 64, X, Const(U32))

    def test_masked_shift_idiom(self):
        # (x & (0xffffffff << k)) >> k == ((x << 32) >> (32 + k)) — the
        # peephole rewrite, for every mask shift k
        for k in (1, 4, 28):
            mask = (U32 << k) & U32
            before = mkop("rsh", 64, mkop("and", 64, X, Const(mask)),
                          Const(k))
            after = mkop("rsh", 64, mkop("lsh", 64, X, Const(32)),
                         Const(32 + k))
            assert normalize_deep(before) == normalize_deep(after), k


class TestProveEqual:
    def test_symbolic_proof(self):
        a = mkop("add", 64, X, Const(5))
        b = mkop("add", 64, Const(5), X)
        assert prove_equal(a, b) == ("proved", "symbolic", None)

    def test_refutation_carries_counterexample(self):
        a = mkop("add", 64, X, Const(1))
        b = mkop("add", 64, X, Const(2))
        status, _method, env = prove_equal(a, b)
        assert status == "refuted"
        assert evaluate(a, env) != evaluate(b, env)

    def test_exhaustive_enumeration_proves(self):
        # narrow support: only 3 bits of X matter on each side, so the
        # enumerator covers the full space and issues a real proof
        a = mkop("mul", 64, mkop("and", 64, X, Const(7)), Const(2))
        b = mkop("lsh", 64, mkop("and", 64, X, Const(7)), Const(1))
        status, method, env = prove_equal(a, b)
        assert status == "proved"
        assert env is None

    def test_exhaustive_enumeration_refutes(self):
        a = mkop("and", 64, X, Const(3))
        b = mkop("and", 64, X, Const(1))
        status, _method, env = prove_equal(a, b)
        assert status == "refuted"
        assert evaluate(a, env) != evaluate(b, env)

    def test_identical_syms(self):
        assert prove_equal(X, X)[0] == "proved"

    def test_different_syms_refuted(self):
        assert prove_equal(X, Y)[0] == "refuted"


class TestSupportMasks:
    def test_and_narrows(self):
        masks = {}
        support_masks(mkop("and", 64, X, Const(0xF)), into=masks)
        assert masks[X] == 0xF

    def test_add_carry_widens_downward_only(self):
        masks = {}
        support_masks(mkop("and", 64, mkop("add", 64, X, Y), Const(0xF0)),
                      into=masks)
        # carries propagate upward: bits 0..7 of the inputs can reach
        # the masked byte, higher bits cannot
        assert masks[X] == 0xFF
        assert masks[Y] == 0xFF

    def test_rsh_shifts_demand(self):
        masks = {}
        support_masks(
            mkop("and", 64, mkop("rsh", 64, X, Const(8)), Const(0xF)),
            into=masks)
        assert masks[X] == 0xF00


class TestTermGrowth:
    def test_op_size_saturates(self):
        from repro.tv.expr import SIZE_CAP, expr_size

        expr = X
        for _ in range(40):  # tree size 2**40, DAG size 41
            expr = Op("add", 64, (expr, expr))
        assert expr_size(expr) == SIZE_CAP

    def test_normalize_deep_is_dag_linear(self):
        # a register folded into itself doubles the *tree* per step; the
        # memoized normalizer must still finish instantly
        expr = mkop("add", 64, X, Const(1))
        for _ in range(60):
            expr = Op("add", 64, (expr, expr))
        assert normalize_deep(expr) is not None

    def test_run_region_caps_term_growth(self):
        from repro.isa import instruction as ins
        from repro.tv.state import Unsupported, run_region

        doubling = [ins.alu64("add", 1, src=1) for _ in range(40)]
        with pytest.raises(Unsupported, match="node cap"):
            run_region(doubling)


class TestTnum:
    def test_tnum_contains_concrete_values(self):
        expr = mkop("add", 64, mkop("and", 64, X, Const(0xFF)), Const(1))
        tn = expr_tnum(expr)
        for env in sample_envs(sorted(symbols_of(expr), key=repr), seed=3):
            assert tn.contains(evaluate(expr, env))

    def test_tnum_decides_disjoint_eq(self):
        # (x|16) can never equal 3: bit 4 is known-set vs known-clear
        cond = Op("jeq", 64, (mkop("or", 64, X, Const(16)), Const(3)))
        assert tnum_decide(cond) is False

    def test_tnum_undecided_returns_none(self):
        cond = Op("jeq", 64, (X, Const(3)))
        assert tnum_decide(cond) is None
