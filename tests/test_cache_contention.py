"""Cross-process cache contention: many writers, one sharded store.

The daemon, its worker pool, and any number of batch-compiler pools
may all share one on-disk cache directory.  The store's contract under
that contention: no torn/corrupt entries (temp file + ``os.replace``),
no lost updates (after the dust settles a warm pass hits on every
key), and no stale reads through the memory LRU (an evicted entry
re-read from disk is byte-identical to the original result).
"""

import concurrent.futures
import os
import pickle
import threading

from repro.cache import CompilationCache
from repro.core import CompileJob, MerlinPipeline
from repro.isa import ProgramType
from repro.serve import DaemonThread, ServeClient, ServeConfig

SOURCES = [
    ("alpha", """
u64 alpha(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    return a + 2 + 3;
}
"""),
    ("beta", """
u64 beta(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    u64 b = *(u64*)(ctx + 8);
    return (a & 0xfff) ^ (b >> 2);
}
"""),
    ("gamma", """
u64 gamma(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    u64 acc = 1;
    if (a > 4) { acc = acc + a; }
    return acc;
}
"""),
    ("delta", """
u64 delta(u8* ctx) {
    u32 a = *(u32*)(ctx + 0);
    u32 b = (u32)a * 7;
    return (u64)b + 9;
}
"""),
]

BATCH = [
    CompileJob(name=name, source=source, entry=name,
               prog_type=ProgramType.TRACEPOINT, mcpu="v2", ctx_size=64)
    for name, source in SOURCES
]


def signature(report):
    return [(prog.insns, rep.ni_original, rep.ni_optimized)
            for prog, rep in report]


def every_disk_entry(directory):
    """Yield every sharded ``.pkl`` entry, unpickled (raises on a torn
    or corrupt file — the corruption check)."""
    for root, _dirs, files in os.walk(directory):
        for filename in files:
            path = os.path.join(root, filename)
            assert filename.endswith(".pkl"), f"stray file {path}"
            with open(path, "rb") as handle:
                yield path, pickle.loads(handle.read())


class TestConcurrentPools:
    def test_two_pools_race_one_store(self, tmp_path):
        """Two multi-process batch compiles race on one directory: both
        return reference results and every disk entry stays readable."""
        reference = MerlinPipeline().compile_many(BATCH)
        results = {}

        def run(tag):
            cache = CompilationCache(directory=str(tmp_path))
            results[tag] = MerlinPipeline().compile_many(
                BATCH, jobs=2, cache=cache)

        threads = [threading.Thread(target=run, args=(tag,))
                   for tag in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert signature(results["a"]) == signature(reference)
        assert signature(results["b"]) == signature(reference)
        entries = list(every_disk_entry(tmp_path))
        assert len(entries) == len(BATCH)  # one entry per key, no dupes
        for _path, payload in entries:
            program, report = payload
            assert program.ni == report.ni_optimized

    def test_no_lost_updates_after_contention(self, tmp_path):
        def run():
            cache = CompilationCache(directory=str(tmp_path))
            MerlinPipeline().compile_many(BATCH, jobs=2, cache=cache)

        threads = [threading.Thread(target=run) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # a fresh process-equivalent reader hits on every key: nothing
        # was lost or torn by the concurrent writers
        fresh = CompilationCache(directory=str(tmp_path))
        warm = MerlinPipeline().compile_many(BATCH, cache=fresh)
        assert warm.cache_stats.hits == len(BATCH)
        assert warm.cache_stats.misses == 0
        assert all(rep.cached for rep in warm.reports)

    def test_daemon_and_pools_share_one_store(self, tmp_path):
        """The service daemon (with its own worker pool) and an
        out-of-band batch compile pool hammer the same store while
        clients stream requests — everyone sees reference results."""
        reference = MerlinPipeline().compile_many(BATCH)
        config = ServeConfig(cache_dir=str(tmp_path), jobs=2,
                             max_batch=8, max_delay=0.01)
        pool_result = {}

        def out_of_band():
            cache = CompilationCache(directory=str(tmp_path))
            pool_result["batch"] = MerlinPipeline().compile_many(
                BATCH, jobs=2, cache=cache)

        with DaemonThread(config) as handle:
            racer = threading.Thread(target=out_of_band)
            racer.start()
            with ServeClient(handle.address) as client:
                responses = client.compile_pipelined([
                    {"op": "compile", "name": name, "source": source,
                     "entry": name, "prog_type": "tracepoint",
                     "ctx_size": 64}
                    for name, source in SOURCES] * 3)
            racer.join()
            stats = handle.daemon.snapshot()

        assert all(r["ok"] for r in responses), responses
        for (name, _source), response, (_prog, rep) in zip(
                SOURCES, responses, reference):
            assert response["result"]["ni_optimized"] == rep.ni_optimized
        assert signature(pool_result["batch"]) == signature(reference)
        assert stats["cache"]["write_errors"] == 0
        assert stats["cache"]["read_errors"] == 0
        for _path, (program, report) in every_disk_entry(tmp_path):
            assert program.ni == report.ni_optimized


class TestLruStaleness:
    def test_evicted_entry_rereads_identically_from_disk(self, tmp_path):
        """A memory-LRU eviction must never serve a stale or divergent
        result: the disk re-read equals the original compile."""
        cache = CompilationCache(directory=str(tmp_path),
                                 max_memory_entries=2)
        pipeline = MerlinPipeline()
        cold = pipeline.compile_many(BATCH, cache=cache)  # 4 > 2 evicts
        assert cache.stats.evictions >= 2

        warm = pipeline.compile_many(BATCH, cache=cache)
        assert warm.cache_stats.hits == len(BATCH)
        assert warm.cache_stats.disk_hits >= 2  # evicted keys re-read
        assert signature(warm) == signature(cold)

    def test_memory_only_eviction_recompiles_consistently(self):
        cache = CompilationCache(max_memory_entries=2)
        pipeline = MerlinPipeline()
        cold = pipeline.compile_many(BATCH, cache=cache)
        warm = pipeline.compile_many(BATCH, cache=cache)
        # with no disk tier the evicted keys genuinely recompile; the
        # results must still be identical
        assert signature(warm) == signature(cold)


class TestSharedExecutor:
    def test_caller_owned_executor_survives_batches(self, tmp_path):
        """The daemon reuses one persistent pool across dispatches; the
        batch API must not shut a caller-owned executor down."""
        import multiprocessing

        from repro.core.batch import compile_many

        cache = CompilationCache(directory=str(tmp_path))
        pipeline = MerlinPipeline()
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=2,
                mp_context=multiprocessing.get_context("spawn")) as pool:
            first = compile_many(pipeline, BATCH, jobs=2, cache=cache,
                                 executor=pool)
            second = compile_many(pipeline, BATCH, jobs=2, cache=cache,
                                  executor=pool)
        assert signature(first) == signature(second)
        assert second.cache_stats.hits == len(BATCH)


class TestSuperoptMemoContention:
    """The superopt rewrite memo shares the same sharded store.  Under
    racing writers the same contract holds: no torn entries, and a
    fresh reader replays every window without searching."""

    def _program(self):
        from repro.isa import BpfProgram, assemble

        return BpfProgram("memo", assemble(
            "r1 = 10\nr1 += 5\nr2 = 1\nr2 += 0\nr0 = r1\nexit"))

    def test_threads_share_memo_without_torn_entries(self, tmp_path):
        from repro.core.superopt import (RewriteMemoEntry,
                                         SuperoptimizerPass)

        outputs = {}

        def run(tag):
            cache = CompilationCache(directory=str(tmp_path))
            program = self._program()
            SuperoptimizerPass(memo=cache).run(program)
            outputs[tag] = program.insns

        threads = [threading.Thread(target=run, args=(tag,))
                   for tag in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(set(map(tuple, outputs.values()))) == 1
        entries = list(every_disk_entry(tmp_path))
        assert entries  # the memo really went to disk
        for _path, entry in entries:
            assert isinstance(entry, RewriteMemoEntry)

        # a fresh process-equivalent reader replays without searching
        fresh = CompilationCache(directory=str(tmp_path))
        program = self._program()
        warm = SuperoptimizerPass(memo=fresh)
        warm.run(program)
        assert warm.counters["searches"] == 0
        assert warm.counters["memo_hits"] > 0
        assert program.insns == outputs[0]

    def test_worker_pool_shares_memo_store(self, tmp_path):
        """Superopt compile jobs fanned over a process pool share one
        memo directory; the warm pass hits on every compile key and
        every disk entry (results and memo alike) stays readable."""
        import dataclasses

        from repro.core.superopt import RewriteMemoEntry, SuperoptSpec

        batch = [dataclasses.replace(job, superopt=SuperoptSpec())
                 for job in BATCH]
        cache = CompilationCache(directory=str(tmp_path))
        cold = MerlinPipeline().compile_many(batch, jobs=2, cache=cache)
        assert cold.failed == 0

        fresh = CompilationCache(directory=str(tmp_path))
        warm = MerlinPipeline().compile_many(batch, cache=fresh)
        assert warm.cache_stats.hits == len(batch)
        assert signature(warm) == signature(cold)

        kinds = {"result": 0, "memo": 0}
        for _path, entry in every_disk_entry(tmp_path):
            if isinstance(entry, RewriteMemoEntry):
                kinds["memo"] += 1
            else:
                program, report = entry
                assert program.ni == report.ni_optimized
                kinds["result"] += 1
        assert kinds["result"] == len(batch)
        assert kinds["memo"] > 0
