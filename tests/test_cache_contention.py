"""Cross-process cache contention: many writers, one sharded store.

The daemon, its worker pool, and any number of batch-compiler pools
may all share one on-disk cache directory.  The store's contract under
that contention: no torn/corrupt entries (temp file + ``os.replace``),
no lost updates (after the dust settles a warm pass hits on every
key), and no stale reads through the memory LRU (an evicted entry
re-read from disk is byte-identical to the original result).
"""

import concurrent.futures
import os
import pickle
import threading

from repro.cache import CompilationCache
from repro.core import CompileJob, MerlinPipeline
from repro.isa import ProgramType
from repro.serve import DaemonThread, ServeClient, ServeConfig

SOURCES = [
    ("alpha", """
u64 alpha(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    return a + 2 + 3;
}
"""),
    ("beta", """
u64 beta(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    u64 b = *(u64*)(ctx + 8);
    return (a & 0xfff) ^ (b >> 2);
}
"""),
    ("gamma", """
u64 gamma(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    u64 acc = 1;
    if (a > 4) { acc = acc + a; }
    return acc;
}
"""),
    ("delta", """
u64 delta(u8* ctx) {
    u32 a = *(u32*)(ctx + 0);
    u32 b = (u32)a * 7;
    return (u64)b + 9;
}
"""),
]

BATCH = [
    CompileJob(name=name, source=source, entry=name,
               prog_type=ProgramType.TRACEPOINT, mcpu="v2", ctx_size=64)
    for name, source in SOURCES
]


def signature(report):
    return [(prog.insns, rep.ni_original, rep.ni_optimized)
            for prog, rep in report]


def every_disk_entry(directory):
    """Yield every sharded ``.pkl`` entry, unpickled (raises on a torn
    or corrupt file — the corruption check).  Transient files — a
    writer's ``.tmp-*.pkl`` or an evictor's ``.tomb-*`` rename — are
    legitimate mid-race states, not entries; everything else must be a
    complete pickled entry."""
    for root, _dirs, files in os.walk(directory):
        for filename in files:
            path = os.path.join(root, filename)
            if filename.startswith(".") or ".tomb-" in filename:
                continue
            assert filename.endswith(".pkl"), f"stray file {path}"
            with open(path, "rb") as handle:
                yield path, pickle.loads(handle.read())


class TestConcurrentPools:
    def test_two_pools_race_one_store(self, tmp_path):
        """Two multi-process batch compiles race on one directory: both
        return reference results and every disk entry stays readable."""
        reference = MerlinPipeline().compile_many(BATCH)
        results = {}

        def run(tag):
            cache = CompilationCache(directory=str(tmp_path))
            results[tag] = MerlinPipeline().compile_many(
                BATCH, jobs=2, cache=cache)

        threads = [threading.Thread(target=run, args=(tag,))
                   for tag in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert signature(results["a"]) == signature(reference)
        assert signature(results["b"]) == signature(reference)
        entries = list(every_disk_entry(tmp_path))
        assert len(entries) == len(BATCH)  # one entry per key, no dupes
        for _path, payload in entries:
            program, report = payload
            assert program.ni == report.ni_optimized

    def test_no_lost_updates_after_contention(self, tmp_path):
        def run():
            cache = CompilationCache(directory=str(tmp_path))
            MerlinPipeline().compile_many(BATCH, jobs=2, cache=cache)

        threads = [threading.Thread(target=run) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # a fresh process-equivalent reader hits on every key: nothing
        # was lost or torn by the concurrent writers
        fresh = CompilationCache(directory=str(tmp_path))
        warm = MerlinPipeline().compile_many(BATCH, cache=fresh)
        assert warm.cache_stats.hits == len(BATCH)
        assert warm.cache_stats.misses == 0
        assert all(rep.cached for rep in warm.reports)

    def test_daemon_and_pools_share_one_store(self, tmp_path):
        """The service daemon (with its own worker pool) and an
        out-of-band batch compile pool hammer the same store while
        clients stream requests — everyone sees reference results."""
        reference = MerlinPipeline().compile_many(BATCH)
        config = ServeConfig(cache_dir=str(tmp_path), jobs=2,
                             max_batch=8, max_delay=0.01)
        pool_result = {}

        def out_of_band():
            cache = CompilationCache(directory=str(tmp_path))
            pool_result["batch"] = MerlinPipeline().compile_many(
                BATCH, jobs=2, cache=cache)

        with DaemonThread(config) as handle:
            racer = threading.Thread(target=out_of_band)
            racer.start()
            with ServeClient(handle.address) as client:
                responses = client.compile_pipelined([
                    {"op": "compile", "name": name, "source": source,
                     "entry": name, "prog_type": "tracepoint",
                     "ctx_size": 64}
                    for name, source in SOURCES] * 3)
            racer.join()
            stats = handle.daemon.snapshot()

        assert all(r["ok"] for r in responses), responses
        for (name, _source), response, (_prog, rep) in zip(
                SOURCES, responses, reference):
            assert response["result"]["ni_optimized"] == rep.ni_optimized
        assert signature(pool_result["batch"]) == signature(reference)
        assert stats["cache"]["write_errors"] == 0
        assert stats["cache"]["read_errors"] == 0
        for _path, (program, report) in every_disk_entry(tmp_path):
            assert program.ni == report.ni_optimized


class TestLruStaleness:
    def test_evicted_entry_rereads_identically_from_disk(self, tmp_path):
        """A memory-LRU eviction must never serve a stale or divergent
        result: the disk re-read equals the original compile."""
        cache = CompilationCache(directory=str(tmp_path),
                                 max_memory_entries=2)
        pipeline = MerlinPipeline()
        cold = pipeline.compile_many(BATCH, cache=cache)  # 4 > 2 evicts
        assert cache.stats.evictions >= 2

        warm = pipeline.compile_many(BATCH, cache=cache)
        assert warm.cache_stats.hits == len(BATCH)
        assert warm.cache_stats.disk_hits >= 2  # evicted keys re-read
        assert signature(warm) == signature(cold)

    def test_memory_only_eviction_recompiles_consistently(self):
        cache = CompilationCache(max_memory_entries=2)
        pipeline = MerlinPipeline()
        cold = pipeline.compile_many(BATCH, cache=cache)
        warm = pipeline.compile_many(BATCH, cache=cache)
        # with no disk tier the evicted keys genuinely recompile; the
        # results must still be identical
        assert signature(warm) == signature(cold)


class TestSharedExecutor:
    def test_caller_owned_executor_survives_batches(self, tmp_path):
        """The daemon reuses one persistent pool across dispatches; the
        batch API must not shut a caller-owned executor down."""
        import multiprocessing

        from repro.core.batch import compile_many

        cache = CompilationCache(directory=str(tmp_path))
        pipeline = MerlinPipeline()
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=2,
                mp_context=multiprocessing.get_context("spawn")) as pool:
            first = compile_many(pipeline, BATCH, jobs=2, cache=cache,
                                 executor=pool)
            second = compile_many(pipeline, BATCH, jobs=2, cache=cache,
                                  executor=pool)
        assert signature(first) == signature(second)
        assert second.cache_stats.hits == len(BATCH)


class TestSuperoptMemoContention:
    """The superopt rewrite memo shares the same sharded store.  Under
    racing writers the same contract holds: no torn entries, and a
    fresh reader replays every window without searching."""

    def _program(self):
        from repro.isa import BpfProgram, assemble

        return BpfProgram("memo", assemble(
            "r1 = 10\nr1 += 5\nr2 = 1\nr2 += 0\nr0 = r1\nexit"))

    def test_threads_share_memo_without_torn_entries(self, tmp_path):
        from repro.core.superopt import (RewriteMemoEntry,
                                         SuperoptimizerPass)

        outputs = {}

        def run(tag):
            cache = CompilationCache(directory=str(tmp_path))
            program = self._program()
            SuperoptimizerPass(memo=cache).run(program)
            outputs[tag] = program.insns

        threads = [threading.Thread(target=run, args=(tag,))
                   for tag in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(set(map(tuple, outputs.values()))) == 1
        entries = list(every_disk_entry(tmp_path))
        assert entries  # the memo really went to disk
        for _path, entry in entries:
            assert isinstance(entry, RewriteMemoEntry)

        # a fresh process-equivalent reader replays without searching
        fresh = CompilationCache(directory=str(tmp_path))
        program = self._program()
        warm = SuperoptimizerPass(memo=fresh)
        warm.run(program)
        assert warm.counters["searches"] == 0
        assert warm.counters["memo_hits"] > 0
        assert program.insns == outputs[0]

    def test_worker_pool_shares_memo_store(self, tmp_path):
        """Superopt compile jobs fanned over a process pool share one
        memo directory; the warm pass hits on every compile key and
        every disk entry (results and memo alike) stays readable."""
        import dataclasses

        from repro.core.superopt import RewriteMemoEntry, SuperoptSpec

        batch = [dataclasses.replace(job, superopt=SuperoptSpec())
                 for job in BATCH]
        cache = CompilationCache(directory=str(tmp_path))
        cold = MerlinPipeline().compile_many(batch, jobs=2, cache=cache)
        assert cold.failed == 0

        fresh = CompilationCache(directory=str(tmp_path))
        warm = MerlinPipeline().compile_many(batch, cache=fresh)
        assert warm.cache_stats.hits == len(batch)
        assert signature(warm) == signature(cold)

        kinds = {"result": 0, "memo": 0}
        for _path, entry in every_disk_entry(tmp_path):
            if isinstance(entry, RewriteMemoEntry):
                kinds["memo"] += 1
            else:
                program, report = entry
                assert program.ni == report.ni_optimized
                kinds["result"] += 1
        assert kinds["result"] == len(batch)
        assert kinds["memo"] > 0


class TestEvictionContention:
    """PR 10 fleet semantics: N evictors and readers race on one tree.

    The tombstone contract — ``os.replace`` to a ``.tomb-*`` name, then
    unlink — means every removal is claimed by exactly one sweeper, a
    reader never sees a half-deleted entry, and an eviction storm never
    loses an update that a later compile re-stores.
    """

    def _populate(self, directory):
        cache = CompilationCache(directory=str(directory))
        MerlinPipeline().compile_many(BATCH, cache=cache)
        return cache

    def test_racing_sweepers_expire_each_entry_exactly_once(self, tmp_path):
        self._populate(tmp_path)
        sweepers = [CompilationCache(directory=str(tmp_path),
                                     ttl_seconds=0.001)
                    for _ in range(4)]
        barrier = threading.Barrier(len(sweepers))
        future = __import__("time").time() + 3600  # everything is idle

        def run(cache):
            barrier.wait()
            cache.sweep(now=future)

        threads = [threading.Thread(target=run, args=(cache,))
                   for cache in sweepers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total_expired = sum(c.stats.expired for c in sweepers)
        assert total_expired == len(BATCH)  # exactly once, no double count
        assert list(every_disk_entry(tmp_path)) == []

    def test_size_budget_race_never_over_evicts(self, tmp_path):
        self._populate(tmp_path)
        entries = list(every_disk_entry(tmp_path))
        keep = max(os.path.getsize(path) for path, _ in entries)
        sweepers = [CompilationCache(directory=str(tmp_path),
                                     max_disk_bytes=keep)
                    for _ in range(3)]
        threads = [threading.Thread(target=cache.sweep)
                   for cache in sweepers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        survivors = list(every_disk_entry(tmp_path))
        assert survivors  # the budget admits at least one entry
        evicted = sum(c.stats.disk_evictions for c in sweepers)
        assert evicted == len(entries) - len(survivors)

    def test_eviction_never_tears_inflight_reads(self, tmp_path):
        """Readers (forced to disk each time) race an eviction/re-store
        churn loop: every read is a complete entry or a clean miss —
        ``read_errors`` (the torn-bytes counter) stays zero."""
        self._populate(tmp_path)
        pipeline = MerlinPipeline()
        reference = pipeline.compile_many(BATCH)
        stop = threading.Event()
        readers = [CompilationCache(directory=str(tmp_path))
                   for _ in range(3)]
        seen = {id(cache): 0 for cache in readers}

        def read_loop(cache):
            while not stop.is_set():
                cache.clear_memory()  # every get goes to disk
                result = pipeline.compile_many(BATCH, cache=cache)
                assert signature(result) == signature(reference)
                seen[id(cache)] += 1

        threads = [threading.Thread(target=read_loop, args=(cache,))
                   for cache in readers]
        for thread in threads:
            thread.start()
        churn = CompilationCache(directory=str(tmp_path),
                                 max_disk_bytes=0)
        writer = CompilationCache(directory=str(tmp_path))
        for _ in range(10):
            churn.sweep()  # evict the whole tree...
            MerlinPipeline().compile_many(BATCH, cache=writer)  # ...restore
        stop.set()
        for thread in threads:
            thread.join()

        assert all(count > 0 for count in seen.values())
        for cache in readers + [churn, writer]:
            assert cache.stats.read_errors == 0

    def test_warm_hits_recover_after_eviction_storm(self, tmp_path):
        self._populate(tmp_path)
        CompilationCache(directory=str(tmp_path), max_disk_bytes=0).sweep()
        assert list(every_disk_entry(tmp_path)) == []
        # traffic re-stores the keys; a fresh reader then hits them all
        restore = CompilationCache(directory=str(tmp_path))
        MerlinPipeline().compile_many(BATCH, cache=restore)
        fresh = CompilationCache(directory=str(tmp_path))
        warm = MerlinPipeline().compile_many(BATCH, cache=fresh)
        assert warm.cache_stats.hits == len(BATCH)
        assert warm.cache_stats.misses == 0

    def test_two_daemons_share_store_under_aggressive_sweep(self, tmp_path):
        """Two shard daemons (the fleet's cache topology, minus the
        router) sweep one tree on a tight TTL while clients stream:
        every response is ok, nothing tears, and entries the sweeps
        removed come back on the next pass."""
        configs = [ServeConfig(cache_dir=str(tmp_path), max_batch=8,
                               max_delay=0.005, cache_ttl=0.3,
                               sweep_interval=0.1, shard_id=index)
                   for index in range(2)]
        payloads = [{"op": "compile", "name": name, "source": source,
                     "entry": name, "prog_type": "tracepoint",
                     "ctx_size": 64}
                    for name, source in SOURCES]
        import time as _time
        with DaemonThread(configs[0]) as one, \
                DaemonThread(configs[1]) as two:
            with ServeClient(one.address) as ca, \
                    ServeClient(two.address) as cb:
                for _round in range(3):
                    ra = ca.compile_pipelined(payloads * 2)
                    rb = cb.compile_pipelined(payloads * 2)
                    assert all(r["ok"] for r in ra + rb)
                    _time.sleep(0.45)  # TTL + both sweepers bite
                # the tree was churned; traffic restores it and the
                # repeat pass is warm again on both daemons
                assert all(r["ok"] for r in ca.compile_pipelined(payloads))
                assert all(r["ok"] for r in cb.compile_pipelined(payloads))
                warm_a = ca.compile_pipelined(payloads)
                warm_b = cb.compile_pipelined(payloads)
                assert all(r["result"]["cached"] for r in warm_a + warm_b)
            stats = [one.daemon.snapshot(), two.daemon.snapshot()]
        for snap in stats:
            assert snap["cache"]["read_errors"] == 0
            assert snap["cache"]["write_errors"] == 0
        assert sum(s["cache"]["expired"] for s in stats) > 0
        for _path, (program, report) in every_disk_entry(tmp_path):
            assert program.ni == report.ni_optimized
