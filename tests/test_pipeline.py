"""Full-pipeline tests: Merlin end-to-end on source programs.

The invariants from the paper: optimized programs always pass the
verifier, never grow, behave identically, and verify in fewer NPI.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import compile_baseline, compile_bpf, optimize
from repro.core import ALL_OPTIMIZERS, MerlinPipeline, MerlinReport
from repro.frontend import compile_source
from repro.isa import ProgramType
from repro.verifier import KERNELS, verify
from repro.vm import Machine
from repro.workloads.xdp import ALL_XDP, BY_NAME, compile_workload

SOURCE = """
map array counts(u32, u64, 8);

u32 entrypoint(u8* ctx) {
    u64 data = ctx->data;
    u64 end = ctx->data_end;
    if (data + 20 > end) { return XDP_DROP; }
    u16 proto = *(u16*)(data + 12);
    u32 word = *(u32*)(data + 14);
    u32 key = (word >> 28) & 7;
    u64* slot = map_lookup(counts, &key);
    if (slot != 0) { *slot += 1; }
    if (proto == 0x0800) { return XDP_PASS; }
    return XDP_DROP;
}
"""


def compile_pair(source=SOURCE, entry="entrypoint", **kwargs):
    baseline = compile_baseline(compile_bpf(source), entry, **kwargs)
    optimized, report = optimize(compile_bpf(source), entry, **kwargs)
    return baseline, optimized, report


class TestPipelineInvariants:
    def test_optimized_never_larger(self):
        baseline, optimized, report = compile_pair()
        assert optimized.ni <= baseline.ni
        assert report.ni_original == baseline.ni
        assert report.ni_optimized == optimized.ni

    def test_reduction_is_positive_on_optimizable_code(self):
        _, _, report = compile_pair()
        assert report.ni_reduction > 0

    def test_optimized_verifies(self):
        _, optimized, _ = compile_pair()
        assert verify(optimized).ok

    def test_npi_not_worse(self):
        baseline, optimized, _ = compile_pair()
        assert verify(optimized).npi <= verify(baseline).npi

    def test_verify_after_option(self):
        module = compile_bpf(SOURCE)
        pipeline = MerlinPipeline(verify_after=True)
        _, report = pipeline.compile(module.get("entrypoint"), module,
                                     ctx_size=24)
        assert report.verification is not None
        assert report.verification.ok

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(ValueError):
            MerlinPipeline(enabled={"warp-drive"})

    def test_single_optimizer_subsets_work(self):
        for name in sorted(ALL_OPTIMIZERS):
            module = compile_bpf(SOURCE)
            pipeline = MerlinPipeline(enabled={name})
            program, report = pipeline.compile(module.get("entrypoint"),
                                               module, ctx_size=24)
            assert verify(program).ok, name
            assert report.ni_optimized <= report.ni_original, name

    def test_report_time_accounting(self):
        _, _, report = compile_pair()
        assert report.compile_seconds > 0
        assert all(s.time_seconds >= 0 for s in report.pass_stats)

    def test_pass_stats_have_both_tiers(self):
        _, _, report = compile_pair()
        tiers = {s.tier for s in report.pass_stats}
        assert tiers == {"ir", "bytecode"}

    def test_optimize_program_bytecode_only(self):
        baseline = compile_baseline(compile_bpf(SOURCE), "entrypoint")
        pipeline = MerlinPipeline()
        optimized, report = pipeline.optimize_program(baseline)
        assert optimized.ni <= baseline.ni
        assert report.ni_original == baseline.ni
        # original untouched
        assert baseline.ni == report.ni_original


class TestSemanticPreservation:
    @pytest.mark.parametrize("workload", ALL_XDP, ids=lambda w: w.name)
    def test_workload_equivalence(self, workload):
        from repro.baselines.equivalence import equivalent, generate_tests

        baseline = compile_workload(workload)
        optimized = compile_workload(workload, optimize=True)
        tests = generate_tests(baseline, count=6)
        assert equivalent(baseline, optimized, tests)

    @pytest.mark.parametrize("workload", ALL_XDP, ids=lambda w: w.name)
    def test_workload_verifies_after_merlin(self, workload):
        optimized = compile_workload(workload, optimize=True)
        result = verify(optimized)
        assert result.ok, result.reason

    @given(st.binary(min_size=24, max_size=24))
    @settings(max_examples=20, deadline=None)
    def test_random_ctx_equivalence(self, ctx_bytes):
        source = """
u64 f(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    u32 b = *(u32*)(ctx + 9);
    u16 c = *(u16*)(ctx + 14);
    u64 acc = a ^ (u64)b;
    acc = acc + ((u64)c << 3);
    u32 low = (u32)acc;
    low = low >> 7;
    return acc + (u64)low;
}
"""
        module = compile_source(source)
        baseline = compile_baseline(module, "f",
                                    prog_type=ProgramType.TRACEPOINT,
                                    ctx_size=24)
        optimized, _ = optimize(compile_source(source), "f",
                                prog_type=ProgramType.TRACEPOINT,
                                ctx_size=24)
        r0 = Machine(baseline).run(ctx=ctx_bytes).return_value
        r1 = Machine(optimized).run(ctx=ctx_bytes).return_value
        assert r0 == r1

    def test_optimized_runs_cheaper(self):
        baseline, optimized, _ = compile_pair()
        from repro.workloads.packets import build_packet

        packet = build_packet(64)
        base_cycles = Machine(baseline).run(packet=packet).counters.cycles
        opt_cycles = Machine(optimized).run(packet=packet).counters.cycles
        assert opt_cycles <= base_cycles


# Multiplying into a u32 marks the value "dirty", so widening it back
# to u64 forces isel to emit the shl-32/shr-32 zero-extension pair that
# Code Compaction rewrites into a single ALU32 mov — at mcpu=v2 this is
# the only CC opportunity, which is exactly what the old
# `mcpu == "v3"` gate silently skipped.
CC_TRIGGER = """
u64 f(u8* ctx) {
    u32 a = *(u32*)(ctx + 0);
    u32 b = a * 3;
    u64 c = (u64)b;
    return c + 1;
}
"""


def _cc_rewrites(report):
    return sum(s.rewrites for s in report.pass_stats if s.name == "cc")


class TestKernelGating:
    def test_cc_fires_on_v2_program_under_v3_kernel(self):
        # Opt 5 is gated on the *loading kernel*, not the program's
        # starting mcpu: a v2 program on a v3-capable kernel gets its
        # zero-extension pairs compacted and is promoted to v3.
        module = compile_bpf(CC_TRIGGER)
        pipeline = MerlinPipeline(kernel=KERNELS["6.5"])
        program, report = pipeline.compile(
            module.get("f"), module, prog_type=ProgramType.TRACEPOINT,
            mcpu="v2", ctx_size=64)
        assert _cc_rewrites(report) > 0
        assert any(i.is_alu32 for i in program.insns)
        assert program.mcpu == "v3"
        assert verify(program, KERNELS["6.5"]).ok

    def test_cc_enabled_for_v3_program(self):
        module = compile_bpf(SOURCE)
        pipeline = MerlinPipeline(kernel=KERNELS["6.5"])
        program, report = pipeline.compile(module.get("entrypoint"), module,
                                           mcpu="v3", ctx_size=24)
        assert verify(program, KERNELS["6.5"]).ok

    def test_old_kernel_never_sees_alu32(self):
        module = compile_bpf(SOURCE)
        pipeline = MerlinPipeline(kernel=KERNELS["4.15"])
        program, _ = pipeline.compile(module.get("entrypoint"), module,
                                      mcpu="v3", ctx_size=24)
        assert verify(program, KERNELS["4.15"]).ok

    def test_cc_stays_off_under_pre_v3_kernel(self):
        # same v2 program, but a 4.15 loading kernel lacks ALU32
        # support: CC must not fire and the program must stay v2
        module = compile_bpf(CC_TRIGGER)
        pipeline = MerlinPipeline(kernel=KERNELS["4.15"])
        program, report = pipeline.compile(
            module.get("f"), module, prog_type=ProgramType.TRACEPOINT,
            mcpu="v2", ctx_size=64)
        assert _cc_rewrites(report) == 0
        assert not any(i.is_alu32 for i in program.insns)
        assert program.mcpu == "v2"
        assert verify(program, KERNELS["4.15"]).ok

    def test_v2_and_v3_entry_points_agree_under_v3_kernel(self):
        # with the gate fixed, the compacted v2 program behaves
        # identically to its uncompacted self
        module = compile_bpf(CC_TRIGGER)
        baseline = compile_baseline(compile_bpf(CC_TRIGGER), "f",
                                    prog_type=ProgramType.TRACEPOINT,
                                    ctx_size=64)
        pipeline = MerlinPipeline(kernel=KERNELS["6.5"])
        optimized, _ = pipeline.compile(
            module.get("f"), module, prog_type=ProgramType.TRACEPOINT,
            mcpu="v2", ctx_size=64)
        for fill in (0, 1, 0x5A, 0xFF):
            ctx = bytes([fill]) * 64
            assert (Machine(baseline).run(ctx=ctx).return_value
                    == Machine(optimized).run(ctx=ctx).return_value)


class TestCompileIdempotence:
    def test_compile_does_not_mutate_caller_function(self):
        from repro import ir

        module = compile_bpf(SOURCE)
        func = module.get("entrypoint")
        before = ir.print_function(func)
        pipeline = MerlinPipeline()
        pipeline.compile(func, module, ctx_size=24)
        assert ir.print_function(func) == before

    def test_compile_twice_identical_reports(self):
        module = compile_bpf(SOURCE)
        func = module.get("entrypoint")
        pipeline = MerlinPipeline()
        prog1, rep1 = pipeline.compile(func, module, ctx_size=24)
        prog2, rep2 = pipeline.compile(func, module, ctx_size=24)
        assert prog1.insns == prog2.insns
        assert rep1.ni_original == rep2.ni_original
        assert rep1.ni_optimized == rep2.ni_optimized
        assert ([(s.name, s.tier, s.rewrites) for s in rep1.pass_stats]
                == [(s.name, s.tier, s.rewrites) for s in rep2.pass_stats])
