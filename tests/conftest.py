"""Shared fixtures for the test suite."""

import pytest

from repro.frontend import compile_source
from repro.workloads.xdp import BY_NAME, compile_workload


@pytest.fixture(scope="session")
def xdp1_baseline():
    return compile_workload(BY_NAME["xdp1"])


@pytest.fixture(scope="session")
def xdp1_merlin():
    return compile_workload(BY_NAME["xdp1"], optimize=True)


@pytest.fixture()
def counter_source():
    return """
map array counters(u32, u64, 4);

u64 count(u8* ctx) {
    u32 key = 0;
    u64* value = map_lookup(counters, &key);
    if (value != 0) {
        *value += 1;
    }
    return 0;
}
"""
