"""Tests for the parallel batch compiler (repro.core.batch).

The contract: a batched compile is report-for-report identical to a
sequential loop, regardless of worker count or cache temperature.
"""

import pytest

from repro.cache import CompilationCache
from repro.core import (
    BatchReport,
    CompileJob,
    MerlinPipeline,
    compile_many,
    default_jobs,
    optimize_many,
)
from repro.isa import ProgramType
from repro.verifier import KERNELS

SOURCES = [
    ("mul", """
u64 mul(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    u32 b = (u32)a * 3;
    u64 c = (u64)b;
    return c + 1;
}
"""),
    ("mask", """
u64 mask(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    u64 b = *(u64*)(ctx + 8);
    return (a & 0xffff) + (b >> 4);
}
"""),
    ("branchy", """
u64 branchy(u8* ctx) {
    u64 a = *(u64*)(ctx + 0);
    u64 acc = 0;
    if (a > 10) { acc = acc + a; }
    if (a > 100) { acc = acc * 2; }
    return acc;
}
"""),
    ("loads", """
u64 loads(u8* ctx) {
    u32 a = *(u32*)(ctx + 0);
    u32 b = *(u32*)(ctx + 4);
    u16 c = *(u16*)(ctx + 8);
    return (u64)a + (u64)b + (u64)c;
}
"""),
]

BATCH = [
    CompileJob(name=name, source=source, entry=name,
               prog_type=ProgramType.TRACEPOINT, mcpu="v2", ctx_size=64)
    for name, source in SOURCES
]


def report_signature(report: BatchReport):
    """Everything that must not depend on jobs/cache: bytecode, NI,
    per-pass rewrite counts."""
    return [
        (prog.insns, prog.mcpu, rep.ni_original, rep.ni_optimized,
         [(s.name, s.tier, s.rewrites) for s in rep.pass_stats])
        for prog, rep in report
    ]


class TestCompileMany:
    def test_sequential_matches_loop(self):
        pipeline = MerlinPipeline()
        batch = pipeline.compile_many(BATCH)
        assert len(batch) == len(BATCH)
        from repro.frontend import compile_source

        for job, (program, rep) in zip(BATCH, batch):
            module = compile_source(job.source, job.name)
            solo, solo_rep = MerlinPipeline().compile(
                module.get(job.entry), module, prog_type=job.prog_type,
                mcpu=job.mcpu, ctx_size=job.ctx_size)
            assert program.insns == solo.insns
            assert rep.ni_optimized == solo_rep.ni_optimized

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_identical_to_sequential(self, jobs):
        pipeline = MerlinPipeline()
        seq = pipeline.compile_many(BATCH, jobs=1)
        par = pipeline.compile_many(BATCH, jobs=jobs)
        assert report_signature(par) == report_signature(seq)
        assert par.jobs == jobs

    def test_results_in_input_order(self):
        pipeline = MerlinPipeline()
        batch = pipeline.compile_many(BATCH, jobs=2)
        assert [r.name for r in batch.reports] == [j.name for j in BATCH]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            MerlinPipeline().compile_many(BATCH, jobs=0)

    def test_batch_report_totals(self):
        batch = MerlinPipeline().compile_many(BATCH)
        assert batch.ni_original == sum(r.ni_original for r in batch.reports)
        assert batch.ni_optimized == sum(r.ni_optimized
                                         for r in batch.reports)
        assert 0.0 <= batch.ni_reduction <= 1.0
        assert batch.wall_seconds > 0
        assert batch.cache_stats is None  # no cache supplied

    def test_empty_batch(self):
        batch = MerlinPipeline().compile_many([])
        assert len(batch) == 0
        assert batch.ni_reduction == 0.0


class TestCachedBatches:
    def test_warm_memory_cache_sequential(self):
        cache = CompilationCache()
        pipeline = MerlinPipeline()
        cold = pipeline.compile_many(BATCH, cache=cache)
        warm = pipeline.compile_many(BATCH, cache=cache)
        assert cold.cache_stats.misses == len(BATCH)
        assert cold.cache_stats.hits == 0
        assert warm.cache_stats.hits == len(BATCH)
        assert warm.cache_stats.misses == 0
        assert report_signature(warm) == report_signature(cold)
        assert all(rep.cached for rep in warm.reports)

    def test_warm_disk_cache_parallel(self, tmp_path):
        cache = CompilationCache(directory=str(tmp_path))
        pipeline = MerlinPipeline()
        cold = pipeline.compile_many(BATCH, jobs=2, cache=cache)
        assert cold.cache_stats.misses == len(BATCH)
        warm = pipeline.compile_many(BATCH, jobs=2, cache=cache)
        assert warm.cache_stats.hits == len(BATCH)
        assert warm.cache_stats.disk_hits == len(BATCH)
        assert report_signature(warm) == report_signature(cold)

    def test_sequential_cold_parallel_warm(self, tmp_path):
        # entries written by an in-process run are visible to workers
        cache = CompilationCache(directory=str(tmp_path))
        pipeline = MerlinPipeline()
        cold = pipeline.compile_many(BATCH, jobs=1, cache=cache)
        warm = pipeline.compile_many(BATCH, jobs=3, cache=cache)
        assert warm.cache_stats.hits == len(BATCH)
        assert report_signature(warm) == report_signature(cold)

    def test_per_run_stats_are_deltas(self):
        cache = CompilationCache()
        pipeline = MerlinPipeline()
        pipeline.compile_many(BATCH, cache=cache)
        warm = pipeline.compile_many(BATCH, cache=cache)
        # the warm row reports only its own lookups, not the cumulative
        # campaign counters
        assert warm.cache_stats.lookups == len(BATCH)
        assert cache.stats.lookups == 2 * len(BATCH)

    def test_pipeline_config_invalidates(self, tmp_path):
        cache = CompilationCache(directory=str(tmp_path))
        MerlinPipeline(kernel=KERNELS["6.5"]).compile_many(BATCH, cache=cache)
        other = MerlinPipeline(kernel=KERNELS["4.15"]).compile_many(
            BATCH, cache=cache)
        assert other.cache_stats.hits == 0
        assert other.cache_stats.misses == len(BATCH)


class TestOptimizeMany:
    def _programs(self):
        from repro import compile_baseline, compile_bpf

        return [
            compile_baseline(compile_bpf(source), name,
                             prog_type=ProgramType.TRACEPOINT, ctx_size=64)
            for name, source in SOURCES
        ]

    def test_matches_optimize_program(self):
        programs = self._programs()
        pipeline = MerlinPipeline()
        batch = pipeline.optimize_many(programs)
        for original, (optimized, rep) in zip(programs, batch):
            solo, solo_rep = MerlinPipeline().optimize_program(original)
            assert optimized.insns == solo.insns
            assert rep.ni_optimized == solo_rep.ni_optimized

    def test_parallel_identical(self):
        programs = self._programs()
        pipeline = MerlinPipeline()
        seq = pipeline.optimize_many(programs, jobs=1)
        par = pipeline.optimize_many(programs, jobs=2)
        assert report_signature(par) == report_signature(seq)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            MerlinPipeline().optimize_many([], jobs=-1)


class TestSuiteBatch:
    def test_compile_suite_batch_matches_single(self):
        from repro.workloads.suites import (
            compile_suite,
            compile_suite_program,
            generate_suite,
        )

        programs = generate_suite("sysdig", seed=7, scale=0.05, count=2)
        batch = compile_suite(programs, jobs=2)
        assert len(batch) == 2
        for suite_prog, program in zip(programs, batch.programs):
            solo = compile_suite_program(suite_prog, optimize=True)
            assert program.insns == solo.insns

    def test_suite_jobs_shape(self):
        from repro.workloads.suites import TRACE_CTX_SIZE, generate_suite, suite_jobs

        programs = generate_suite("sysdig", seed=7, scale=0.05, count=2)
        jobs = suite_jobs(programs, mcpu="v2")
        assert [j.entry for j in jobs] == [p.entry for p in programs]
        assert all(j.prog_type is ProgramType.TRACEPOINT for j in jobs)
        assert all(j.ctx_size == TRACE_CTX_SIZE for j in jobs)
        assert all(j.mcpu == "v2" for j in jobs)


class TestBatchCost:
    def test_measure_batch_cost_counters(self, tmp_path):
        from repro.eval import measure_batch_cost

        cache = CompilationCache(directory=str(tmp_path))
        cold, _ = measure_batch_cost(BATCH, "cold", cache=cache)
        warm, _ = measure_batch_cost(BATCH, "warm", cache=cache)
        assert cold.cache_misses == len(BATCH) and cold.cache_hits == 0
        assert warm.cache_hits == len(BATCH) and warm.cache_misses == 0
        assert warm.hit_rate == 1.0
        assert cold.wall_seconds > 0 and warm.wall_seconds > 0

    def test_cache_speedup_requires_disk_for_parallel(self):
        from repro.eval import measure_cache_speedup

        with pytest.raises(ValueError):
            measure_cache_speedup([], cache_dir=None, jobs=2)


class TestFuzzParallel:
    def test_campaign_jobs_invariant(self):
        from repro.fuzz import run_campaign

        seq = run_campaign(seed=11, budget=10, jobs=1)
        par = run_campaign(seed=11, budget=10, jobs=2)
        assert par.programs_run == seq.programs_run
        assert par.programs_skipped == seq.programs_skipped
        assert par.roundtrip_failures == seq.roundtrip_failures
        assert len(par.findings) == len(seq.findings)

    def test_campaign_invalid_jobs(self):
        from repro.fuzz import run_campaign

        with pytest.raises(ValueError):
            run_campaign(budget=1, jobs=0)


def test_default_jobs_bounds():
    jobs = default_jobs()
    assert 1 <= jobs <= 8
