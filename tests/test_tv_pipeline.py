"""End-to-end translation validation: compile(validate=...), the cache
bypass, the fuzz-campaign certificate axis, and the ``repro tv`` CLI."""

import json

import pytest

from repro.cache import CompilationCache
from repro.cli import main
from repro.core import MerlinPipeline
from repro.frontend import compile_source
from repro.fuzz.differential import check_certificates
from repro.fuzz.engine import run_campaign
from repro.fuzz.generator import generate
from repro.tv import CertificateReport, TranslationValidationError

pytestmark = pytest.mark.tv


def _compile_counter(source, **kwargs):
    module = compile_source(source)
    pipeline = MerlinPipeline()
    return pipeline.compile(module.get("count"), module, **kwargs)


class TestCompileValidate:
    def test_validate_true_certifies_every_pass(self, counter_source):
        program, report = _compile_counter(counter_source, validate=True)
        assert report.certificates, "pipeline emitted no witnesses"
        assert all(c.certified for c in report.certificates)
        # validation must not change the compilation result
        plain, _ = _compile_counter(counter_source)
        assert program.insns == plain.insns

    def test_report_mode_never_raises(self, counter_source):
        _program, report = _compile_counter(counter_source,
                                            validate="report")
        assert report.certificates
        assert {c.tier for c in report.certificates} <= {"ir", "bytecode"}

    def test_without_validate_no_certificates(self, counter_source):
        _program, report = _compile_counter(counter_source)
        assert report.certificates == []

    def test_error_is_structured(self, counter_source, monkeypatch):
        monkeypatch.setattr(
            "repro.core.bytecode_passes.superword.PLANTED_OFFSET_BUG", True)
        source = """
        u64 pair(u8* ctx) {
            u64 acc = 7;
            u64 shadow = 0;
            acc = acc + shadow;
            return acc;
        }
        """
        module = compile_source(source)
        pipeline = MerlinPipeline()
        try:
            pipeline.compile(module.get("pair"), module, validate=True)
        except TranslationValidationError as err:
            assert err.pass_name
            assert err.point
        # no SLM merge in this program is fine too — the planted bug
        # only fires on adjacent stack stores


class TestCacheParticipation:
    """Validated compiles cache their certificate verdicts (under a
    key that folds in the validate flag, so plain and validated
    entries never mix)."""

    def test_validated_compile_stores_and_hits(self, counter_source):
        cache = CompilationCache()
        _program, cold = _compile_counter(counter_source, cache=cache,
                                          validate="report")
        assert cold.cached is False
        assert cold.certificates
        assert len(cache) == 1
        _program, warm = _compile_counter(counter_source, cache=cache,
                                          validate="report")
        assert warm.cached is True
        assert [(c.pass_name, c.status) for c in warm.certificates] \
            == [(c.pass_name, c.status) for c in cold.certificates]

    def test_cached_plain_hit_has_no_certificates(self, counter_source):
        cache = CompilationCache()
        _compile_counter(counter_source, cache=cache)
        _program, report = _compile_counter(counter_source, cache=cache)
        assert report.cached is True
        assert report.certificates == []

    def test_plain_entry_does_not_satisfy_validated_request(
            self, counter_source):
        cache = CompilationCache()
        _compile_counter(counter_source, cache=cache)
        _program, report = _compile_counter(counter_source, cache=cache,
                                            validate="report")
        assert report.cached is False  # distinct key: it re-certifies
        assert report.certificates
        assert len(cache) == 2


class TestFuzzCertificateAxis:
    def test_clean_case_yields_no_divergence(self):
        case = generate("bytecode", 7)
        assert check_certificates(case) is None

    def test_campaign_smoke_stays_clean(self, tmp_path):
        report = run_campaign(seed=2024, budget=6, minimize=False,
                              corpus_dir=str(tmp_path), certify=True)
        kinds = [f.divergence.kind for f in report.findings]
        assert "certificate" not in kinds


class TestCertificateReport:
    def test_summary_counts(self, counter_source):
        _program, report = _compile_counter(counter_source,
                                            validate="report")
        doc = CertificateReport(seed=2024)
        doc.add("count", report.certificates)
        summary = doc.to_dict()["summary"]
        assert summary["programs"] == 1
        assert summary["pass_applications"] == len(report.certificates)
        assert summary["alarms"] == 0
        assert doc.clean


class TestTvCli:
    def test_tv_sysdig_subset(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        rc = main(["tv", "--suite", "sysdig", "--count", "2",
                   "--fuzz", "2", "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "pass applications" in text
        document = json.loads(out.read_text())
        assert document["summary"]["alarms"] == 0
        assert document["summary"]["programs"] >= 2

    def test_tv_rejects_unknown_suite(self, capsys):
        assert main(["tv", "--suite", "nope", "--out", ""]) == 2
        assert "unknown suite" in capsys.readouterr().err
