"""Tests for program-local function inlining (paper §5.1's "local
functions" are verified within main — eBPF has no general call for
them, so clang inlines; our frontend does the same)."""

import pytest

from repro.frontend import CompileError, compile_source
from repro.codegen import compile_function
from repro.core import MerlinPipeline
from repro.ir import validate_module
from repro.isa import ProgramType
from repro.verifier import verify
from repro.vm import Machine


def run(source: str, entry: str = "f", ctx: bytes = b"\x00" * 64,
        optimize: bool = False) -> int:
    module = compile_source(source)
    validate_module(module)
    if optimize:
        program, _ = MerlinPipeline().compile(
            module.get(entry), module, prog_type=ProgramType.TRACEPOINT,
            ctx_size=64)
    else:
        program = compile_function(module.get(entry), module,
                                   prog_type=ProgramType.TRACEPOINT,
                                   ctx_size=64)
    return Machine(program).run(ctx=ctx).return_value


class TestInlining:
    def test_simple_helper_function(self):
        source = """
u64 double_it(u64 x) { return x * 2; }
u64 f(u8* ctx) { return double_it(21); }
"""
        assert run(source) == 42

    def test_multiple_calls_independent_scopes(self):
        source = """
u64 square(u64 x) { u64 tmp = x * x; return tmp; }
u64 f(u8* ctx) { return square(3) + square(4); }
"""
        assert run(source) == 25

    def test_callee_does_not_see_caller_locals(self):
        source = """
u64 leak(u64 x) { return secret; }
u64 f(u8* ctx) {
    u64 secret = 9;
    return leak(1);
}
"""
        with pytest.raises(CompileError):
            run(source)

    def test_early_returns_join(self):
        source = """
u64 clamp(u64 x) {
    if (x > 100) { return 100; }
    if (x < 10) { return 10; }
    return x;
}
u64 f(u8* ctx) {
    return clamp(5) + clamp(50) + clamp(500);
}
"""
        assert run(source) == 10 + 50 + 100

    def test_loops_inside_callee(self):
        source = """
u64 sum_to(u64 n) {
    u64 s = 0;
    for (u64 i = 0; i <= n; i += 1) { s += i; }
    return s;
}
u64 f(u8* ctx) { return sum_to(10); }
"""
        assert run(source) == 55

    def test_nested_inlining(self):
        source = """
u64 inc(u64 x) { return x + 1; }
u64 twice(u64 x) { return inc(inc(x)); }
u64 f(u8* ctx) { return twice(40); }
"""
        assert run(source) == 42

    def test_callee_with_address_taken_local(self):
        source = """
map hash kv(u64, u64, 8);

u64 put_get(u64 k, u64 v) {
    map_update(kv, &k, &v, BPF_ANY);
    u64* got = map_lookup(kv, &k);
    if (got == 0) { return 0; }
    return *got;
}
u64 f(u8* ctx) { return put_get(5, 77); }
"""
        assert run(source) == 77

    def test_recursion_rejected(self):
        with pytest.raises(CompileError, match="recursi"):
            run("u64 f(u8* ctx) { return f(ctx); }")

    def test_mutual_recursion_rejected(self):
        source = """
u64 a(u64 x) { return b(x); }
u64 b(u64 x) { return a(x); }
u64 f(u8* ctx) { return a(1); }
"""
        with pytest.raises(CompileError):
            run(source)

    def test_arity_checked(self):
        source = """
u64 g(u64 x, u64 y) { return x + y; }
u64 f(u8* ctx) { return g(1); }
"""
        with pytest.raises(CompileError, match="arguments"):
            run(source)

    def test_fall_off_end_returns_zero(self):
        source = """
u64 maybe(u64 x) {
    if (x > 5) { return x; }
}
u64 f(u8* ctx) { return maybe(3) + maybe(9); }
"""
        assert run(source) == 9

    def test_merlin_preserves_inlined_semantics(self):
        source = """
u32 rotl(u32 x, u32 k) { return (x << k) | (x >> (32 - k)); }
u64 f(u8* ctx) {
    u32 v = *(u32*)(ctx + 4);
    return (u64)rotl(v, 13) ^ (u64)rotl(v, 7);
}
"""
        ctx = bytes(range(64))
        assert run(source, ctx=ctx) == run(source, ctx=ctx, optimize=True)

    def test_inlined_program_verifies(self):
        source = """
u64 helper(u64 a, u64 b) { return (a << 3) ^ b; }
u64 f(u8* ctx) {
    u64 x = *(u64*)(ctx + 0);
    return helper(x, 17);
}
"""
        module = compile_source(source)
        program = compile_function(module.get("f"), module,
                                   prog_type=ProgramType.TRACEPOINT,
                                   ctx_size=64)
        assert verify(program).ok
